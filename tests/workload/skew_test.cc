#include "workload/skew.h"

#include <gtest/gtest.h>

#include <set>

#include "agg/reference.h"

namespace adaptagg {
namespace {

TEST(OutputSkew, Figure9Layout) {
  OutputSkewSpec spec;
  spec.num_nodes = 8;
  spec.single_group_nodes = 4;
  spec.num_tuples = 8'000;
  spec.num_groups = 100;
  auto rel = GenerateOutputSkewRelation(spec);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->total_tuples(), 8'000);

  for (int node = 0; node < 8; ++node) {
    std::set<int64_t> groups;
    HeapFileScanner scan(&rel->partition(node));
    for (TupleView t = scan.Next(); t.valid(); t = scan.Next()) {
      groups.insert(t.GetInt64(kBenchGroupCol));
    }
    if (node < 4) {
      // Single-group nodes hold exactly their own group id.
      ASSERT_EQ(groups.size(), 1u) << node;
      EXPECT_EQ(*groups.begin(), node);
    } else {
      // The busy nodes hold many of the remaining 96 groups and none of
      // the four singleton groups.
      EXPECT_GT(groups.size(), 50u) << node;
      for (int64_t g : groups) {
        EXPECT_GE(g, 4);
        EXPECT_LT(g, 100);
      }
    }
  }
}

TEST(OutputSkew, EqualTuplesPerNode) {
  OutputSkewSpec spec;
  spec.num_tuples = 8'001;  // remainder goes to the last node
  spec.num_groups = 64;
  auto rel = GenerateOutputSkewRelation(spec);
  ASSERT_TRUE(rel.ok());
  for (int node = 0; node < 7; ++node) {
    EXPECT_EQ(rel->partition(node).num_tuples(), 1'000);
  }
  EXPECT_EQ(rel->partition(7).num_tuples(), 1'001);
}

TEST(OutputSkew, AllGroupsPresent) {
  OutputSkewSpec spec;
  spec.num_tuples = 40'000;
  spec.num_groups = 500;
  auto rel = GenerateOutputSkewRelation(spec);
  ASSERT_TRUE(rel.ok());
  auto q = MakeBenchQuery(&rel->schema());
  ASSERT_TRUE(q.ok());
  auto ref = ReferenceAggregate(*q, *rel);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->num_rows(), 500);
}

TEST(OutputSkew, Validation) {
  OutputSkewSpec spec;
  spec.single_group_nodes = 9;  // > nodes
  EXPECT_FALSE(GenerateOutputSkewRelation(spec).ok());
  spec = OutputSkewSpec();
  spec.num_groups = 4;  // == single-group nodes
  EXPECT_FALSE(GenerateOutputSkewRelation(spec).ok());
  spec = OutputSkewSpec();
  spec.num_nodes = 4;
  spec.single_group_nodes = 4;  // no busy nodes left
  spec.num_groups = 10;
  EXPECT_FALSE(GenerateOutputSkewRelation(spec).ok());
}

}  // namespace
}  // namespace adaptagg
