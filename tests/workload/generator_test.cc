#include "workload/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "agg/reference.h"

namespace adaptagg {
namespace {

TEST(BenchSchema, HundredByteTuple) {
  Schema s = MakeBenchSchema(100);
  EXPECT_EQ(s.tuple_size(), 100);
  EXPECT_EQ(s.field(kBenchGroupCol).name, "g");
  EXPECT_EQ(s.field(kBenchValueCol).name, "v");
  EXPECT_EQ(MakeBenchSchema(16).tuple_size(), 16);
}

TEST(Generator, TotalAndPerNodeCounts) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.num_tuples = 10'000;
  spec.num_groups = 100;
  auto rel = GenerateRelation(spec);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->total_tuples(), 10'000);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rel->partition(i).num_tuples(), 2'500);
  }
}

TEST(Generator, GroupDomainRespected) {
  WorkloadSpec spec;
  spec.num_nodes = 2;
  spec.num_tuples = 5'000;
  spec.num_groups = 37;
  auto rel = GenerateRelation(spec);
  ASSERT_TRUE(rel.ok());
  std::set<int64_t> groups;
  for (int node = 0; node < 2; ++node) {
    HeapFileScanner scan(&rel->partition(node));
    for (TupleView t = scan.Next(); t.valid(); t = scan.Next()) {
      int64_t g = t.GetInt64(kBenchGroupCol);
      ASSERT_GE(g, 0);
      ASSERT_LT(g, 37);
      groups.insert(g);
    }
  }
  EXPECT_EQ(groups.size(), 37u);  // 5000 uniform draws cover 37 groups
}

TEST(Generator, DeterministicInSeed) {
  WorkloadSpec spec;
  spec.num_nodes = 2;
  spec.num_tuples = 1'000;
  spec.num_groups = 10;
  spec.seed = 42;
  auto a = GenerateRelation(spec);
  auto b = GenerateRelation(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto qa = MakeBenchQuery(&a->schema());
  ASSERT_TRUE(qa.ok());
  auto ra = ReferenceAggregate(*qa, *a);
  auto rb = ReferenceAggregate(*qa, *b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_TRUE(ResultSetsEqual(*ra, *rb, 0.0));

  spec.seed = 43;
  auto c = GenerateRelation(spec);
  ASSERT_TRUE(c.ok());
  auto rc = ReferenceAggregate(*qa, *c);
  ASSERT_TRUE(rc.ok());
  EXPECT_FALSE(ResultSetsEqual(*ra, *rc, 0.0));
}

TEST(Generator, InputSkewQuotas) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.num_tuples = 10'000;
  spec.num_groups = 10;
  spec.input_skew_factor = 3.0;
  spec.input_skew_nodes = 2;
  auto rel = GenerateRelation(spec);
  ASSERT_TRUE(rel.ok());
  // Weights 3,3,1,1 over 10000 -> 3750,3750,1250,1250.
  EXPECT_NEAR(rel->partition(0).num_tuples(), 3'750, 2);
  EXPECT_NEAR(rel->partition(1).num_tuples(), 3'750, 2);
  EXPECT_NEAR(rel->partition(2).num_tuples(), 1'250, 2);
  EXPECT_NEAR(rel->partition(3).num_tuples(), 1'250, 2);
  EXPECT_EQ(rel->total_tuples(), 10'000);
}

TEST(Generator, HashPlacementColocatesGroups) {
  WorkloadSpec spec;
  spec.num_nodes = 4;
  spec.num_tuples = 4'000;
  spec.num_groups = 40;
  spec.placement = Placement::kHashOnGroup;
  auto rel = GenerateRelation(spec);
  ASSERT_TRUE(rel.ok());
  // Each group must live on exactly one node.
  std::map<int64_t, std::set<int>> where;
  for (int node = 0; node < 4; ++node) {
    HeapFileScanner scan(&rel->partition(node));
    for (TupleView t = scan.Next(); t.valid(); t = scan.Next()) {
      where[t.GetInt64(kBenchGroupCol)].insert(node);
    }
  }
  for (const auto& [g, nodes] : where) {
    EXPECT_EQ(nodes.size(), 1u) << "group " << g << " split across nodes";
  }
}

TEST(Generator, SequentialDistributionExactGroupSizes) {
  WorkloadSpec spec;
  spec.num_nodes = 2;
  spec.num_tuples = 1'000;
  spec.num_groups = 10;
  spec.distribution = GroupDistribution::kSequential;
  auto rel = GenerateRelation(spec);
  ASSERT_TRUE(rel.ok());
  auto q = MakeBenchQuery(&rel->schema());
  ASSERT_TRUE(q.ok());
  auto ref = ReferenceAggregate(*q, *rel);
  ASSERT_TRUE(ref.ok());
  ASSERT_EQ(ref->num_rows(), 10);
  for (int64_t i = 0; i < ref->num_rows(); ++i) {
    EXPECT_EQ(ref->row(i).GetInt64(1), 100);  // exact count per group
  }
}

TEST(Generator, RejectsBadSpecs) {
  WorkloadSpec spec;
  spec.num_nodes = 0;
  EXPECT_FALSE(GenerateRelation(spec).ok());
  spec = WorkloadSpec();
  spec.num_groups = 0;
  EXPECT_FALSE(GenerateRelation(spec).ok());
  spec = WorkloadSpec();
  spec.num_tuples = 10;
  spec.num_groups = 20;  // more groups than tuples
  EXPECT_FALSE(GenerateRelation(spec).ok());
  spec = WorkloadSpec();
  spec.input_skew_factor = 0.5;  // < 1
  EXPECT_FALSE(GenerateRelation(spec).ok());
}

TEST(Generator, SelectivityHelper) {
  WorkloadSpec spec;
  spec.num_tuples = 1'000'000;
  spec.num_groups = 250;
  EXPECT_DOUBLE_EQ(spec.selectivity(), 2.5e-4);
}

}  // namespace
}  // namespace adaptagg
