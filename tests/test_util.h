#ifndef ADAPTAGG_TESTS_TEST_UTIL_H_
#define ADAPTAGG_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>

#include "agg/reference.h"
#include "cluster/cluster.h"
#include "core/algorithm.h"
#include "workload/generator.h"

namespace adaptagg {
namespace testing_util {

/// gtest helpers for Status/Result.
#define ASSERT_OK(expr)                                        \
  do {                                                         \
    const ::adaptagg::Status _st = (expr);                     \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (0)

#define EXPECT_OK(expr)                                        \
  do {                                                         \
    const ::adaptagg::Status _st = (expr);                     \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                        \
  ASSERT_OK_AND_ASSIGN_IMPL(                                   \
      ADAPTAGG_CONCAT_(_res_, __LINE__), lhs, expr)

#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, expr)              \
  auto tmp = (expr);                                           \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();            \
  lhs = std::move(tmp).value();

/// Small engine-test parameters: fast runs, deliberately tiny hash table
/// bound so overflow/adaptive paths actually trigger.
inline SystemParams SmallClusterParams(int num_nodes,
                                       int64_t num_tuples,
                                       int64_t max_hash_entries = 512) {
  SystemParams p;
  p.num_nodes = num_nodes;
  p.num_tuples = num_tuples;
  p.max_hash_entries = max_hash_entries;
  p.network = NetworkKind::kHighBandwidth;
  return p;
}

/// Runs `kind` over `rel` and checks the gathered result against the
/// single-threaded reference oracle.
inline void ExpectMatchesReference(AlgorithmKind kind,
                                   const SystemParams& params,
                                   const AggregationSpec& spec,
                                   PartitionedRelation& rel,
                                   AlgorithmOptions options = {}) {
  ASSERT_OK_AND_ASSIGN(ResultSet expected, ReferenceAggregate(spec, rel));
  Cluster cluster(params);
  RunResult run = cluster.Run(*MakeAlgorithm(kind), spec, rel, options);
  ASSERT_OK(run.status);
  EXPECT_TRUE(ResultSetsEqual(run.results, expected))
      << AlgorithmKindToString(kind) << ": got " << run.results.num_rows()
      << " rows, expected " << expected.num_rows();
}

}  // namespace testing_util
}  // namespace adaptagg

#endif  // ADAPTAGG_TESTS_TEST_UTIL_H_
