#include "exec/expression.h"

#include <gtest/gtest.h>

namespace adaptagg {
namespace {

class ExpressionTest : public ::testing::Test {
 protected:
  ExpressionTest()
      : schema_({{"id", DataType::kInt64, 8},
                 {"score", DataType::kDouble, 8},
                 {"tag", DataType::kBytes, 4}}),
        row_(&schema_) {
    row_.SetInt64(0, 10);
    row_.SetDouble(1, 2.5);
    row_.SetBytes(2, "abc");
  }

  Value Eval(const ExprPtr& e) {
    auto t = e->Validate(schema_);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return e->Eval(row_.view());
  }

  Schema schema_;
  TupleBuffer row_;
};

TEST_F(ExpressionTest, ColumnAndLiteral) {
  EXPECT_EQ(Eval(Col(0)), Value(int64_t{10}));
  EXPECT_EQ(Eval(Col(1)), Value(2.5));
  EXPECT_EQ(Eval(Lit(int64_t{7})), Value(int64_t{7}));
  EXPECT_EQ(Eval(LitBytes("xy")), Value(std::string("xy")));
}

TEST_F(ExpressionTest, NamedColumnResolvesAtValidate) {
  ExprPtr e = ColNamed("score");
  EXPECT_EQ(Eval(e), Value(2.5));
  ExprPtr missing = ColNamed("nope");
  EXPECT_FALSE(missing->Validate(schema_).ok());
}

TEST_F(ExpressionTest, ColumnOutOfRangeRejected) {
  EXPECT_FALSE(Col(9)->Validate(schema_).ok());
  EXPECT_FALSE(Col(-1)->Validate(schema_).ok());
}

TEST_F(ExpressionTest, Comparisons) {
  EXPECT_EQ(Eval(Eq(Col(0), Lit(int64_t{10}))), Value(int64_t{1}));
  EXPECT_EQ(Eval(Ne(Col(0), Lit(int64_t{10}))), Value(int64_t{0}));
  EXPECT_EQ(Eval(Lt(Col(0), Lit(int64_t{11}))), Value(int64_t{1}));
  EXPECT_EQ(Eval(Le(Col(0), Lit(int64_t{10}))), Value(int64_t{1}));
  EXPECT_EQ(Eval(Gt(Col(0), Lit(int64_t{10}))), Value(int64_t{0}));
  EXPECT_EQ(Eval(Ge(Col(0), Lit(int64_t{10}))), Value(int64_t{1}));
}

TEST_F(ExpressionTest, MixedNumericComparisonWidens) {
  EXPECT_EQ(Eval(Gt(Col(1), Lit(int64_t{2}))), Value(int64_t{1}));
  EXPECT_EQ(Eval(Lt(Lit(int64_t{2}), Col(1))), Value(int64_t{1}));
}

TEST_F(ExpressionTest, BytesComparison) {
  // The bytes column is 4 wide and zero-padded; compare against a padded
  // literal.
  EXPECT_EQ(Eval(Eq(Col(2), LitBytes(std::string("abc\0", 4)))),
            Value(int64_t{1}));
  EXPECT_EQ(Eval(Lt(Col(2), LitBytes(std::string("abd\0", 4)))),
            Value(int64_t{1}));
}

TEST_F(ExpressionTest, BytesVsNumericRejected) {
  EXPECT_FALSE(Eq(Col(2), Lit(int64_t{1}))->Validate(schema_).ok());
  EXPECT_FALSE(Add(Col(2), Lit(int64_t{1}))->Validate(schema_).ok());
}

TEST_F(ExpressionTest, LogicalConnectives) {
  ExprPtr t = Eq(Col(0), Lit(int64_t{10}));
  ExprPtr f = Eq(Col(0), Lit(int64_t{11}));
  EXPECT_EQ(Eval(And(t, t)), Value(int64_t{1}));
  EXPECT_EQ(Eval(And(t, f)), Value(int64_t{0}));
  EXPECT_EQ(Eval(Or(f, t)), Value(int64_t{1}));
  EXPECT_EQ(Eval(Or(f, f)), Value(int64_t{0}));
  EXPECT_EQ(Eval(Not(f)), Value(int64_t{1}));
  EXPECT_EQ(Eval(Not(t)), Value(int64_t{0}));
}

TEST_F(ExpressionTest, Arithmetic) {
  EXPECT_EQ(Eval(Add(Col(0), Lit(int64_t{5}))), Value(int64_t{15}));
  EXPECT_EQ(Eval(Sub(Col(0), Lit(int64_t{3}))), Value(int64_t{7}));
  EXPECT_EQ(Eval(Mul(Col(0), Lit(int64_t{4}))), Value(int64_t{40}));
  // Division always produces double.
  EXPECT_EQ(Eval(Div(Col(0), Lit(int64_t{4}))), Value(2.5));
  // Mixing int and double widens.
  EXPECT_EQ(Eval(Add(Col(0), Col(1))), Value(12.5));
  // Division by zero yields 0 rather than UB (documented behavior).
  EXPECT_EQ(Eval(Div(Col(0), Lit(int64_t{0}))), Value(0.0));
}

TEST_F(ExpressionTest, NestedExpression) {
  // (id * 2 > 15) AND (score <= 2.5)
  ExprPtr e = And(Gt(Mul(Col(0), Lit(int64_t{2})), Lit(int64_t{15})),
                  Le(Col(1), Lit(2.5)));
  EXPECT_EQ(Eval(e), Value(int64_t{1}));
  EXPECT_TRUE(EvalPredicate(*e, row_.view()));
}

TEST_F(ExpressionTest, ValidatePredicateRejectsBytes) {
  EXPECT_FALSE(ValidatePredicate(*Col(2), schema_).ok());
  EXPECT_TRUE(ValidatePredicate(*Col(0), schema_).ok());
  EXPECT_TRUE(ValidatePredicate(*Gt(Col(1), Lit(0.0)), schema_).ok());
}

TEST_F(ExpressionTest, ToStringReadable) {
  ExprPtr e = And(Gt(ColNamed("id"), Lit(int64_t{5})),
                  Eq(Col(2), LitBytes("abc")));
  std::string s = e->ToString();
  EXPECT_NE(s.find("id"), std::string::npos);
  EXPECT_NE(s.find(">"), std::string::npos);
  EXPECT_NE(s.find("AND"), std::string::npos);
  EXPECT_NE(s.find("'abc'"), std::string::npos);
}

TEST_F(ExpressionTest, OperatorNames) {
  EXPECT_EQ(CmpOpToString(CmpOp::kLe), "<=");
  EXPECT_EQ(ArithOpToString(ArithOp::kMul), "*");
}

}  // namespace
}  // namespace adaptagg
