#include <gtest/gtest.h>

#include "exec/project.h"
#include "exec/scan.h"
#include "exec/select.h"

namespace adaptagg {
namespace {

class OperatorTest : public ::testing::Test {
 protected:
  OperatorTest()
      : disk_(512),
        schema_({{"k", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}}) {
    auto hf = HeapFile::Create(&disk_, &schema_, "t");
    EXPECT_TRUE(hf.ok());
    file_ = std::make_unique<HeapFile>(std::move(hf).value());
    TupleBuffer t(&schema_);
    for (int64_t i = 0; i < 100; ++i) {
      t.SetInt64(0, i);
      t.SetInt64(1, i % 10);
      EXPECT_TRUE(file_->Append(t.view()).ok());
    }
    EXPECT_TRUE(file_->Flush().ok());
  }

  SimDisk disk_;
  Schema schema_;
  std::unique_ptr<HeapFile> file_;
};

TEST_F(OperatorTest, ScanYieldsAllRows) {
  ScanOperator scan(file_.get(), nullptr, nullptr);
  ASSERT_TRUE(scan.Open().ok());
  int64_t count = 0;
  for (TupleView t = scan.Next(); t.valid(); t = scan.Next()) {
    EXPECT_EQ(t.GetInt64(0), count);
    ++count;
  }
  EXPECT_EQ(count, 100);
  EXPECT_EQ(scan.rows_produced(), 100);
  ASSERT_TRUE(scan.Close().ok());
}

TEST_F(OperatorTest, ScanChargesCosts) {
  SystemParams params;
  CostClock clock;
  ScanOperator scan(file_.get(), &clock, &params);
  ASSERT_TRUE(scan.Open().ok());
  while (scan.Next().valid()) {
  }
  ASSERT_TRUE(scan.Close().ok());
  // Select cost: 100 tuples * (t_r + t_w).
  EXPECT_NEAR(clock.cpu_s(), 100 * (params.t_r() + params.t_w()), 1e-12);
  // I/O: one sequential read per page.
  EXPECT_NEAR(clock.io_s(), file_->num_pages() * params.io_seq_s, 1e-12);
}

TEST_F(OperatorTest, SelectFilters) {
  auto scan = std::make_unique<ScanOperator>(file_.get(), nullptr, nullptr);
  auto select = SelectOperator::Make(
      std::move(scan), Eq(Col(1), Lit(int64_t{3})), nullptr, nullptr);
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  ASSERT_TRUE((*select)->Open().ok());
  int64_t count = 0;
  for (TupleView t = (*select)->Next(); t.valid(); t = (*select)->Next()) {
    EXPECT_EQ(t.GetInt64(1), 3);
    ++count;
  }
  EXPECT_EQ(count, 10);
  EXPECT_EQ((*select)->rows_produced(), 10);
  ASSERT_TRUE((*select)->Close().ok());
}

TEST_F(OperatorTest, SelectRejectsBadPredicate) {
  auto scan = std::make_unique<ScanOperator>(file_.get(), nullptr, nullptr);
  EXPECT_FALSE(
      SelectOperator::Make(std::move(scan), Col(99), nullptr, nullptr)
          .ok());
  auto scan2 =
      std::make_unique<ScanOperator>(file_.get(), nullptr, nullptr);
  EXPECT_FALSE(
      SelectOperator::Make(std::move(scan2), nullptr, nullptr, nullptr)
          .ok());
}

TEST_F(OperatorTest, ProjectComputesDerivedColumns) {
  auto scan = std::make_unique<ScanOperator>(file_.get(), nullptr, nullptr);
  std::vector<ProjectedColumn> cols;
  cols.push_back({"twice", Mul(Col(0), Lit(int64_t{2})), 8});
  cols.push_back({"ratio", Div(Col(0), Lit(int64_t{4})), 8});
  auto project = ProjectOperator::Make(std::move(scan), std::move(cols));
  ASSERT_TRUE(project.ok()) << project.status().ToString();
  const Schema& out = (*project)->schema();
  ASSERT_EQ(out.num_fields(), 2);
  EXPECT_EQ(out.field(0).name, "twice");
  EXPECT_EQ(out.field(0).type, DataType::kInt64);
  EXPECT_EQ(out.field(1).type, DataType::kDouble);

  ASSERT_TRUE((*project)->Open().ok());
  int64_t i = 0;
  for (TupleView t = (*project)->Next(); t.valid();
       t = (*project)->Next(), ++i) {
    EXPECT_EQ(t.GetInt64(0), 2 * i);
    EXPECT_DOUBLE_EQ(t.GetDouble(1), static_cast<double>(i) / 4);
  }
  EXPECT_EQ(i, 100);
  ASSERT_TRUE((*project)->Close().ok());
}

TEST_F(OperatorTest, PipelineScanSelectProject) {
  // scan -> select (k >= 50) -> project (k + v)
  auto scan = std::make_unique<ScanOperator>(file_.get(), nullptr, nullptr);
  auto select = SelectOperator::Make(
      std::move(scan), Ge(Col(0), Lit(int64_t{50})), nullptr, nullptr);
  ASSERT_TRUE(select.ok());
  std::vector<ProjectedColumn> cols;
  cols.push_back({"s", Add(Col(0), Col(1)), 8});
  auto project =
      ProjectOperator::Make(std::move(select).value(), std::move(cols));
  ASSERT_TRUE(project.ok());
  ASSERT_TRUE((*project)->Open().ok());
  int64_t count = 0, k = 50;
  for (TupleView t = (*project)->Next(); t.valid();
       t = (*project)->Next(), ++k) {
    EXPECT_EQ(t.GetInt64(0), k + k % 10);
    ++count;
  }
  EXPECT_EQ(count, 50);
  ASSERT_TRUE((*project)->Close().ok());
}

TEST_F(OperatorTest, ProjectRejectsInvalid) {
  auto scan = std::make_unique<ScanOperator>(file_.get(), nullptr, nullptr);
  EXPECT_FALSE(ProjectOperator::Make(std::move(scan), {}).ok());
  auto scan2 =
      std::make_unique<ScanOperator>(file_.get(), nullptr, nullptr);
  std::vector<ProjectedColumn> bad;
  bad.push_back({"x", nullptr, 8});
  EXPECT_FALSE(ProjectOperator::Make(std::move(scan2), std::move(bad)).ok());
}

TEST_F(OperatorTest, SelectCountsEvaluatedRows) {
  SystemParams params;
  CostClock clock;
  auto scan = std::make_unique<ScanOperator>(file_.get(), &clock, &params);
  auto select_or = SelectOperator::Make(
      std::move(scan), Lt(Col(0), Lit(int64_t{25})), &clock, &params);
  ASSERT_TRUE(select_or.ok());
  auto* select = static_cast<SelectOperator*>(select_or->get());
  ASSERT_TRUE(select->Open().ok());
  while (select->Next().valid()) {
  }
  EXPECT_EQ(select->rows_seen(), 100);
  EXPECT_EQ(select->rows_produced(), 25);
}

}  // namespace
}  // namespace adaptagg
