// Self-test of tools/adaptagg_lint: runs the real binary over fixture
// trees and asserts that (a) every rule fires on its dedicated
// violating file and (b) clean code — including banned tokens that
// appear only inside comments and string literals — produces no
// findings. The binary path and the fixture root are injected by CMake
// as ADAPTAGG_LINT_BIN / ADAPTAGG_LINT_FIXTURES.

#include <sys/wait.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun RunLint(const std::string& root) {
  LintRun run;
  const std::string cmd =
      std::string(ADAPTAGG_LINT_BIN) + " " + root + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  char buf[4096];
  size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    run.output.append(buf, n);
  }
  const int rc = pclose(pipe);
  if (WIFEXITED(rc)) run.exit_code = WEXITSTATUS(rc);
  return run;
}

// True when some finding line carries both the [rule] tag and the file.
bool HasFinding(const std::string& output, const std::string& rule,
                const std::string& file) {
  std::istringstream ss(output);
  std::string line;
  while (std::getline(ss, line)) {
    if (line.find("[" + rule + "]") != std::string::npos &&
        line.find(file) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::string Fixture(const char* tree) {
  return std::string(ADAPTAGG_LINT_FIXTURES) + "/" + tree;
}

TEST(LintSelfTest, EveryRuleFiresOnItsViolationFixture) {
  const LintRun run = RunLint(Fixture("violations"));
  EXPECT_EQ(run.exit_code, 1) << run.output;

  const struct {
    const char* rule;
    const char* file;
  } kExpected[] = {
      {"G1", "src/g1_bad_guard.h"},
      {"G2", "src/badName.h"},
      {"S1", "src/s1_throw.h"},
      {"S2", "src/s2_using.h"},
      {"S3", "src/s3_long_line.h"},
      {"S4", "src/s4util/s4_pairing.cc"},
      {"S5", "src/common/status.h"},
      {"S6", "src/s6_stdout.h"},
      {"S7", "src/obs/s7_undoc.h"},
      {"S8", "src/s8_bare_recv.h"},
      {"S9", "src/s9_scalar.h"},
      {"S10", "src/s10_mutex.h"},
      {"D1", "src/d1_wall.h"},
      {"D2", "src/d2_rand.h"},
      {"D3", "src/d3_unordered.h"},
      {"S11", "src/s11_intrinsics.h"},
      {"S12", "src/s12_cluster_run.h"},
      {"S13", "src/s13_checkpoint.h"},
      {"S14", "src/s14_shared_merge.h"},
  };
  for (const auto& e : kExpected) {
    EXPECT_TRUE(HasFinding(run.output, e.rule, e.file))
        << "rule " << e.rule << " did not fire on " << e.file
        << "\nfull output:\n"
        << run.output;
  }
}

TEST(LintSelfTest, BothS10VariantsFire) {
  const LintRun run = RunLint(Fixture("violations"));
  // Raw std::mutex and an unannotated adaptagg::Mutex are distinct
  // findings on the same fixture.
  EXPECT_TRUE(run.output.find("std::mutex is invisible") !=
              std::string::npos)
      << run.output;
  EXPECT_TRUE(run.output.find("'unguarded_' has no ADAPTAGG_GUARDED_BY") !=
              std::string::npos)
      << run.output;
}

TEST(LintSelfTest, CleanTreeProducesNoFindings) {
  const LintRun run = RunLint(Fixture("clean"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_TRUE(run.output.find("files clean") != std::string::npos)
      << run.output;
}

TEST(LintSelfTest, CommentAndStringContentsStayExempt) {
  // The clean tree's tokens_in_comments.h names nearly every banned
  // token inside comments and string literals; a zero-finding run
  // proves the stripper keeps them out of rule scope.
  const LintRun run = RunLint(Fixture("clean"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_FALSE(run.output.find("tokens_in_comments.h") !=
               std::string::npos &&
               run.output.find("[") != std::string::npos)
      << run.output;
}

}  // namespace
