#ifndef ADAPTAGG_S11_INTRINSICS_H_
#define ADAPTAGG_S11_INTRINSICS_H_

#include <immintrin.h>

namespace fixture {
inline long long AddLanes(long long a, long long b) {
  __m128i va = _mm_set1_epi64x(a);
  __m128i vb = _mm_set1_epi64x(b);
  __m128i sum = _mm_add_epi64(va, vb);
  return _mm_extract_epi64(sum, 0);
}
}  // namespace fixture

#endif  // ADAPTAGG_S11_INTRINSICS_H_
