#ifndef ADAPTAGG_D1_WALL_H_
#define ADAPTAGG_D1_WALL_H_

#include <chrono>

namespace fixture {
inline double Now() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
}  // namespace fixture

#endif  // ADAPTAGG_D1_WALL_H_
