#ifndef ADAPTAGG_S9_SCALAR_H_
#define ADAPTAGG_S9_SCALAR_H_

namespace fixture {
template <typename Sink>
int Drain(Sink& sink) {
  return sink.AddRecord(0, nullptr);
}
}  // namespace fixture

#endif  // ADAPTAGG_S9_SCALAR_H_
