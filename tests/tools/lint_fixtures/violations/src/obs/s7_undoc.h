#ifndef ADAPTAGG_OBS_S7_UNDOC_H_
#define ADAPTAGG_OBS_S7_UNDOC_H_

namespace fixture {
struct Undocumented {
  int value = 0;
};
}  // namespace fixture

#endif  // ADAPTAGG_OBS_S7_UNDOC_H_
