#ifndef ADAPTAGG_D2_RAND_H_
#define ADAPTAGG_D2_RAND_H_

#include <random>

namespace fixture {
inline int Roll() {
  std::random_device rd;
  return static_cast<int>(rd());
}
}  // namespace fixture

#endif  // ADAPTAGG_D2_RAND_H_
