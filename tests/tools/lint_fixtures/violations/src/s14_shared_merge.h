#ifndef ADAPTAGG_S14_SHARED_MERGE_H_
#define ADAPTAGG_S14_SHARED_MERGE_H_

// S14 fixture: direct shared-merge-table use outside its module. Both
// the type name and the concurrent upsert method must fire.
inline void SideChannelSharedMerge(SharedAggHashTable* table,
                                   const void* rec) {
  (void)table->UpsertPartialConcurrent(
      static_cast<const unsigned char*>(rec), 0);
}

#endif  // ADAPTAGG_S14_SHARED_MERGE_H_
