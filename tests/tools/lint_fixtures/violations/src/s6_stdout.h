#ifndef ADAPTAGG_S6_STDOUT_H_
#define ADAPTAGG_S6_STDOUT_H_

#include <iostream>

namespace fixture {
inline void Print() { std::cout << "hi"; }
}  // namespace fixture

#endif  // ADAPTAGG_S6_STDOUT_H_
