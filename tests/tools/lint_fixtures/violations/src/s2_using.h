#ifndef ADAPTAGG_S2_USING_H_
#define ADAPTAGG_S2_USING_H_

#include <string>

using namespace std;

namespace fixture {
inline string Name() { return "x"; }
}  // namespace fixture

#endif  // ADAPTAGG_S2_USING_H_
