#ifndef ADAPTAGG_S3_LONG_LINE_H_
#define ADAPTAGG_S3_LONG_LINE_H_

// This comment line is deliberately written to run far past the eighty column limit.

namespace fixture {
inline int Three() { return 3; }
}  // namespace fixture

#endif  // ADAPTAGG_S3_LONG_LINE_H_
