#ifndef ADAPTAGG_BADNAME_H_
#define ADAPTAGG_BADNAME_H_

namespace fixture {
inline int Two() { return 2; }
}  // namespace fixture

#endif  // ADAPTAGG_BADNAME_H_
