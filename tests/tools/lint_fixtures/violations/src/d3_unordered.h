#ifndef ADAPTAGG_D3_UNORDERED_H_
#define ADAPTAGG_D3_UNORDERED_H_

#include <unordered_map>

namespace fixture {
struct Histogram {
  std::unordered_map<int, int> counts_;
  int Sum() const {
    int total = 0;
    for (const auto& kv : counts_) total += kv.second;
    return total;
  }
};
}  // namespace fixture

#endif  // ADAPTAGG_D3_UNORDERED_H_
