#ifndef ADAPTAGG_S10_MUTEX_H_
#define ADAPTAGG_S10_MUTEX_H_

#include <mutex>

#include "common/mutex.h"

namespace fixture {
struct Counter {
  std::mutex raw_mu_;
  Mutex unguarded_;
  int value_ = 0;
};
}  // namespace fixture

#endif  // ADAPTAGG_S10_MUTEX_H_
