#include <vector>

namespace fixture {
int Sum(const std::vector<int>& v) {
  int s = 0;
  for (int x : v) s += x;
  return s;
}
}  // namespace fixture
