#ifndef ADAPTAGG_S8_BARE_RECV_H_
#define ADAPTAGG_S8_BARE_RECV_H_

namespace fixture {
struct Endpoint {
  int Poll() { return Recv(0); }
  int Recv(int from);
};
}  // namespace fixture

#endif  // ADAPTAGG_S8_BARE_RECV_H_
