#ifndef ADAPTAGG_S1_THROW_H_
#define ADAPTAGG_S1_THROW_H_

namespace fixture {
inline int Parse(int v) {
  if (v < 0) throw v;
  return v;
}
}  // namespace fixture

#endif  // ADAPTAGG_S1_THROW_H_
