#ifndef ADAPTAGG_WRONG_GUARD_H_
#define ADAPTAGG_WRONG_GUARD_H_

namespace fixture {
inline int One() { return 1; }
}  // namespace fixture

#endif  // ADAPTAGG_WRONG_GUARD_H_
