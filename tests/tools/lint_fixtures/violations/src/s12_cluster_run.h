#ifndef ADAPTAGG_S12_CLUSTER_RUN_H_
#define ADAPTAGG_S12_CLUSTER_RUN_H_

// S12 fixture: direct Cluster::Run call sites outside the serving layer.
// The digit separator on the first line doubles as a stripper
// regression check: if it were misread as a char-literal open, the
// violations below would be swallowed and the self-test would fail.
inline void DirectRun(Cluster& cluster) {
  constexpr long kTuples = 100'000;
  cluster.Run(algo, spec, rel, kTuples);
  Cluster::Run(algo, spec, rel);
}

#endif  // ADAPTAGG_S12_CLUSTER_RUN_H_
