#ifndef ADAPTAGG_S13_CHECKPOINT_H_
#define ADAPTAGG_S13_CHECKPOINT_H_

// S13 fixture: direct checkpoint-store use outside the checkpoint
// module. Both the type use and the qualified nested name must fire.
inline void SideChannelCheckpoint() {
  CheckpointStore store(4, 4096);
  CheckpointStore::DiskFactory factory;
  (void)factory;
}

#endif  // ADAPTAGG_S13_CHECKPOINT_H_
