#ifndef ADAPTAGG_COMMON_RESULT_H_
#define ADAPTAGG_COMMON_RESULT_H_

namespace fixture {
/// Minimal stand-in so rule S5 sees the [[nodiscard]] contract.
template <typename T>
class [[nodiscard]] Result {};
}  // namespace fixture

#endif  // ADAPTAGG_COMMON_RESULT_H_
