#ifndef ADAPTAGG_COMMON_SIMD_H_
#define ADAPTAGG_COMMON_SIMD_H_

// The one file allowed to include raw intrinsics headers and name
// _mm_* identifiers: rule S11 exempts src/common/simd.h by path.
#include <immintrin.h>

namespace fixture {
inline long long Lane0(long long a) {
  return _mm_extract_epi64(_mm_set1_epi64x(a), 0);
}
}  // namespace fixture

#endif  // ADAPTAGG_COMMON_SIMD_H_
