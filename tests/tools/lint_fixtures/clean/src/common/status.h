#ifndef ADAPTAGG_COMMON_STATUS_H_
#define ADAPTAGG_COMMON_STATUS_H_

namespace fixture {
/// Minimal stand-in so rule S5 sees the [[nodiscard]] contract.
class [[nodiscard]] Status {};
}  // namespace fixture

#endif  // ADAPTAGG_COMMON_STATUS_H_
