#ifndef ADAPTAGG_TOKENS_IN_COMMENTS_H_
#define ADAPTAGG_TOKENS_IN_COMMENTS_H_

// Banned tokens inside comments must stay exempt: throw, catch,
// Recv(0), steady_clock, rand(), AddRecord(), std::cout, std::mutex,
// random_device, and a range-for over an unordered_map.
namespace fixture {
/// Banned tokens inside string literals must stay exempt too.
inline const char* Doc() {
  return "using namespace std; mt19937 steady_clock throw Recv( ";
}
}  // namespace fixture

#endif  // ADAPTAGG_TOKENS_IN_COMMENTS_H_
