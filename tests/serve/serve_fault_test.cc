// Fault isolation in the serving layer: an injected crash aborts only
// the query that carries the fault plan. Its concurrent neighbors —
// sharing the physical mesh, the relation, and the worker pools — finish
// correctly, and the service keeps serving afterwards. The failure mode
// being guarded against is a hang (a crashed session wedging a shared
// resource), so the suite runs under a hard ctest timeout.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "net/fault.h"
#include "serve/cluster_service.h"
#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

TEST(ServeFault, CrashedQueryDoesNotPoisonItsNeighbors) {
  WorkloadSpec workload;
  workload.num_nodes = 4;
  workload.num_tuples = 12'000;
  workload.num_groups = 400;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                       GenerateRelation(workload));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  ASSERT_OK_AND_ASSIGN(ResultSet expected, ReferenceAggregate(spec, rel));

  ServiceConfig config;
  config.params = SmallClusterParams(4, 12'000);
  config.cache_entries = 0;
  config.scheduler.max_inflight = 3;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ClusterService> service,
                       ClusterService::Start(config, &rel));

  // Three concurrent submissions; the middle one crashes node 1
  // mid-scan. Short detection timeout keeps the abort prompt.
  ServeQuery healthy;
  healthy.spec = spec;
  healthy.algorithm = AlgorithmKind::kAdaptiveTwoPhase;

  ServeQuery doomed = healthy;
  ASSERT_OK_AND_ASSIGN(doomed.options.fault_plan,
                       FaultPlan::Parse("crash:node=1,tuple=500"));
  doomed.options.failure.recv_idle_timeout_s = 2.0;

  ASSERT_OK_AND_ASSIGN(QueryTicketPtr left, service->Submit(healthy));
  ASSERT_OK_AND_ASSIGN(QueryTicketPtr mid, service->Submit(doomed));
  ASSERT_OK_AND_ASSIGN(QueryTicketPtr right, service->Submit(healthy));

  const RunResult& aborted = mid->Wait();
  EXPECT_FALSE(aborted.status.ok());
  EXPECT_NE(aborted.status.message().find("injected crash"),
            std::string::npos)
      << aborted.status.ToString();
  EXPECT_EQ(aborted.metrics.Value("fault.crashes_injected"), 1);

  for (const QueryTicketPtr& ticket : {left, right}) {
    const RunResult& run = ticket->Wait();
    ASSERT_OK(run.status);
    EXPECT_TRUE(ResultSetsEqual(run.results, expected))
        << "neighbor of the crashed query returned " <<
        run.results.num_rows() << " rows, expected " <<
        expected.num_rows();
  }

  MetricsSnapshot metrics = service->Metrics();
  EXPECT_EQ(metrics.Value("serve.aborted"), 1);
  EXPECT_EQ(metrics.Value("serve.completed"), 2);

  // The service is still healthy: a fresh submission after the abort
  // executes normally.
  ASSERT_OK_AND_ASSIGN(QueryTicketPtr after, service->Submit(healthy));
  const RunResult& recovered = after->Wait();
  ASSERT_OK(recovered.status);
  EXPECT_TRUE(ResultSetsEqual(recovered.results, expected));

  service->Shutdown();
  EXPECT_EQ(service->resident_threads(), 0);
}

}  // namespace
}  // namespace adaptagg
