#include "serve/scheduler.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/generator.h"

namespace adaptagg {
namespace {

SchedulerConfig SmallConfig() {
  SchedulerConfig c;
  c.max_inflight = 2;
  c.queue_capacity = 2;
  c.memory_budget_bytes = 1'000;
  return c;
}

TEST(Scheduler, AdmitsWhenSlotAndBudgetFree) {
  Scheduler s(SmallConfig());
  EXPECT_EQ(s.Offer(/*bytes=*/400, /*queued_now=*/0),
            Scheduler::Decision::kAdmit);
  s.Admit(400);
  EXPECT_EQ(s.inflight(), 1);
  EXPECT_EQ(s.inflight_bytes(), 400);
  EXPECT_EQ(s.Offer(400, 0), Scheduler::Decision::kAdmit);
}

TEST(Scheduler, QueuesWhenSlotsFull) {
  Scheduler s(SmallConfig());
  s.Admit(100);
  s.Admit(100);
  EXPECT_EQ(s.Offer(100, 0), Scheduler::Decision::kQueue);
}

TEST(Scheduler, QueuesWhenMemoryDoesNotFitNow) {
  Scheduler s(SmallConfig());
  s.Admit(900);
  // 200 more would exceed the 1000-byte budget right now, but fits the
  // budget overall — it must wait, not be rejected.
  EXPECT_EQ(s.Offer(200, 0), Scheduler::Decision::kQueue);
  s.Release(900);
  EXPECT_EQ(s.Offer(200, 0), Scheduler::Decision::kAdmit);
}

TEST(Scheduler, FifoFairnessNeverJumpsTheQueue) {
  Scheduler s(SmallConfig());
  // A free slot with submissions already waiting means the newcomer
  // queues behind them instead of overtaking.
  EXPECT_EQ(s.Offer(100, /*queued_now=*/1), Scheduler::Decision::kQueue);
}

TEST(Scheduler, RejectsWhenQueueFull) {
  Scheduler s(SmallConfig());
  s.Admit(100);
  s.Admit(100);
  EXPECT_EQ(s.Offer(100, /*queued_now=*/2),
            Scheduler::Decision::kRejectQueueFull);
}

TEST(Scheduler, RejectsOversizedQueryOutright) {
  Scheduler s(SmallConfig());
  // Larger than the whole budget: could never run, so rejecting beats
  // queueing it forever — even with the queue empty and slots free.
  EXPECT_EQ(s.Offer(1'001, 0), Scheduler::Decision::kRejectMemory);
}

TEST(Scheduler, UnlimitedMemoryWhenBudgetNonPositive) {
  SchedulerConfig c = SmallConfig();
  c.memory_budget_bytes = -1;
  Scheduler s(c);
  EXPECT_EQ(s.Offer(int64_t{1} << 40, 0), Scheduler::Decision::kAdmit);
  s.Admit(int64_t{1} << 40);
  EXPECT_TRUE(s.CanStart(int64_t{1} << 40));
}

TEST(Scheduler, CanStartChecksSlotsAndMemory) {
  Scheduler s(SmallConfig());
  EXPECT_TRUE(s.CanStart(1'000));
  s.Admit(600);
  EXPECT_TRUE(s.CanStart(400));
  EXPECT_FALSE(s.CanStart(401));
  s.Admit(100);
  EXPECT_FALSE(s.CanStart(1));  // both slots taken
  s.Release(100);
  EXPECT_TRUE(s.CanStart(400));
}

TEST(Scheduler, ReleaseRestoresCapacityAndTracksHighWater) {
  Scheduler s(SmallConfig());
  s.Admit(300);
  s.Admit(300);
  EXPECT_EQ(s.inflight_high_water(), 2);
  s.Release(300);
  s.Release(300);
  EXPECT_EQ(s.inflight(), 0);
  EXPECT_EQ(s.inflight_bytes(), 0);
  EXPECT_EQ(s.inflight_high_water(), 2);
  EXPECT_EQ(s.Offer(100, 0), Scheduler::Decision::kAdmit);
}

TEST(Scheduler, DecisionNamesAreStable) {
  EXPECT_EQ(SchedulerDecisionToString(Scheduler::Decision::kAdmit),
            "admit");
  EXPECT_EQ(SchedulerDecisionToString(Scheduler::Decision::kQueue),
            "queue");
  EXPECT_EQ(
      SchedulerDecisionToString(Scheduler::Decision::kRejectQueueFull),
      "reject-queue-full");
  EXPECT_EQ(SchedulerDecisionToString(Scheduler::Decision::kRejectMemory),
            "reject-memory");
}

TEST(EstimateQueryMemory, ScalesWithNodesAndHashBound) {
  Schema schema = MakeBenchSchema(100);
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec, MakeBenchQuery(&schema));
  SystemParams params;
  params.num_nodes = 4;
  params.max_hash_entries = 1'000;
  AlgorithmOptions options;

  const int64_t base = EstimateQueryMemoryBytes(spec, options, params);
  EXPECT_GT(base, 0);

  // Twice the nodes → twice the cluster-wide reservation.
  SystemParams wide = params;
  wide.num_nodes = 8;
  EXPECT_EQ(EstimateQueryMemoryBytes(spec, options, wide), 2 * base);

  // A per-query M override beats the system default.
  AlgorithmOptions small = options;
  small.max_hash_entries = 500;
  EXPECT_EQ(EstimateQueryMemoryBytes(spec, small, params), base / 2);
}

}  // namespace
}  // namespace adaptagg
