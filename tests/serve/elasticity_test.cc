// Elasticity and crash replay on the resident serving layer. Resize
// quiesces the service, rebuilds the data plane at the new node count,
// rebalances the relation, and bumps the membership epoch; queries
// before and after must agree with the reference aggregate at every
// size. Session crash replay re-executes a crashed attempt inside the
// service without the client ever seeing the failure. Both paths can
// hang when broken, so the suite runs under the fault-test ceiling.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "net/fault.h"
#include "serve/cluster_service.h"
#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

TEST(Elasticity, ResizeServesCorrectRowsAtEverySize) {
  WorkloadSpec workload;
  workload.num_nodes = 3;
  workload.num_tuples = 9'000;
  workload.num_groups = 300;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(workload));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec, MakeBenchQuery(&rel.schema()));
  ASSERT_OK_AND_ASSIGN(ResultSet expected, ReferenceAggregate(spec, rel));
  const int64_t tuples_before = rel.total_tuples();

  ServiceConfig config;
  config.params = SmallClusterParams(3, workload.num_tuples);
  config.cache_entries = 4;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ClusterService> service,
                       ClusterService::Start(config, &rel));
  EXPECT_EQ(service->membership_epoch(), 0u);

  ServeQuery query;
  query.spec = spec;
  query.algorithm = AlgorithmKind::kAdaptiveTwoPhase;

  // Shrink to 2, then grow to 4: a leave and a join. At every size the
  // relation keeps its tuple multiset, the epoch advances, and the same
  // query lands on the same rows.
  const int sizes[] = {2, 4};
  uint32_t epoch = 0;
  for (int size : sizes) {
    SCOPED_TRACE(size);
    ASSERT_OK_AND_ASSIGN(QueryTicketPtr before, service->Submit(query));
    const RunResult& pre = before->Wait();
    ASSERT_OK(pre.status);
    EXPECT_TRUE(ResultSetsEqual(pre.results, expected));

    const uint64_t version_before = rel.version();
    ASSERT_OK(service->Resize(size));
    EXPECT_EQ(rel.num_nodes(), size);
    EXPECT_EQ(rel.total_tuples(), tuples_before);
    EXPECT_GT(rel.version(), version_before);
    EXPECT_EQ(service->membership_epoch(), ++epoch);
    EXPECT_GT(service->resident_threads(), 0);

    ASSERT_OK_AND_ASSIGN(QueryTicketPtr after, service->Submit(query));
    const RunResult& post = after->Wait();
    ASSERT_OK(post.status);
    // The pre-resize cache entry is keyed on the old relation version,
    // so this is a genuine re-execution at the new size.
    EXPECT_FALSE(post.from_cache);
    EXPECT_EQ(post.num_nodes, size);
    EXPECT_TRUE(ResultSetsEqual(post.results, expected));
  }

  EXPECT_EQ(service->Metrics().Value("serve.resizes"), 2);
  service->Shutdown();
  EXPECT_EQ(service->resident_threads(), 0);
}

TEST(Elasticity, ResizeValidatesItsArguments) {
  WorkloadSpec workload;
  workload.num_nodes = 2;
  workload.num_tuples = 2'000;
  workload.num_groups = 100;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(workload));
  ServiceConfig config;
  config.params = SmallClusterParams(2, workload.num_tuples);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ClusterService> service,
                       ClusterService::Start(config, &rel));

  EXPECT_EQ(service->Resize(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service->Resize(-3).code(), StatusCode::kInvalidArgument);

  // Resizing to the current size is a no-op: no epoch bump, no
  // rebalance, no cache invalidation.
  const uint64_t version = rel.version();
  ASSERT_OK(service->Resize(2));
  EXPECT_EQ(service->membership_epoch(), 0u);
  EXPECT_EQ(rel.version(), version);
  EXPECT_EQ(service->Metrics().Value("serve.resizes"), 0);

  service->Shutdown();
  EXPECT_EQ(service->Resize(3).code(), StatusCode::kFailedPrecondition);
}

TEST(Elasticity, CrashedSessionReplaysInsideTheService) {
  WorkloadSpec workload;
  workload.num_nodes = 3;
  workload.num_tuples = 9'000;
  workload.num_groups = 300;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(workload));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec, MakeBenchQuery(&rel.schema()));
  ASSERT_OK_AND_ASSIGN(ResultSet expected, ReferenceAggregate(spec, rel));

  ServiceConfig config;
  config.params = SmallClusterParams(3, workload.num_tuples);
  config.cache_entries = 0;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ClusterService> service,
                       ClusterService::Start(config, &rel));

  // Node 1 crashes mid-scan; with recovery on, the service replays the
  // session internally and the ticket resolves OK — the client never
  // sees the crash.
  ServeQuery query;
  query.spec = spec;
  query.algorithm = AlgorithmKind::kAdaptiveTwoPhase;
  ASSERT_OK_AND_ASSIGN(query.options.fault_plan,
                       FaultPlan::Parse("crash:node=1,tuple=500"));
  query.options.failure.recv_idle_timeout_s = 2.0;
  query.options.recovery.enabled = true;
  query.options.recovery.checkpoint_every_batches = 4;

  ASSERT_OK_AND_ASSIGN(QueryTicketPtr ticket, service->Submit(query));
  const RunResult& run = ticket->Wait();
  ASSERT_OK(run.status);
  EXPECT_TRUE(ResultSetsEqual(run.results, expected));
  EXPECT_EQ(run.metrics.Value("recovery.attempts"), 1);

  MetricsSnapshot metrics = service->Metrics();
  EXPECT_GE(metrics.Value("serve.recovery.replays"), 1);
  EXPECT_EQ(metrics.Value("serve.aborted"), 0);
  EXPECT_EQ(metrics.Value("serve.completed"), 1);

  // Without recovery, the same plan still aborts descriptively: the
  // replay path must not swallow legitimate failures.
  query.options.recovery.enabled = false;
  ASSERT_OK_AND_ASSIGN(QueryTicketPtr doomed, service->Submit(query));
  const RunResult& aborted = doomed->Wait();
  EXPECT_FALSE(aborted.status.ok());
  EXPECT_NE(aborted.status.message().find("injected crash"),
            std::string::npos)
      << aborted.status.ToString();

  service->Shutdown();
}

TEST(Elasticity, ResizeAfterReplayKeepsServing) {
  // A crash replay followed by a resize followed by a query: the stale
  // frames of the crashed attempt and the retired pre-resize plane must
  // both be invisible to the final run.
  WorkloadSpec workload;
  workload.num_nodes = 3;
  workload.num_tuples = 6'000;
  workload.num_groups = 200;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(workload));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec, MakeBenchQuery(&rel.schema()));
  ASSERT_OK_AND_ASSIGN(ResultSet expected, ReferenceAggregate(spec, rel));

  ServiceConfig config;
  config.params = SmallClusterParams(3, workload.num_tuples);
  config.cache_entries = 0;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ClusterService> service,
                       ClusterService::Start(config, &rel));

  ServeQuery crashing;
  crashing.spec = spec;
  crashing.algorithm = AlgorithmKind::kRepartitioning;
  ASSERT_OK_AND_ASSIGN(crashing.options.fault_plan,
                       FaultPlan::Parse("crash:node=2,tuple=500"));
  crashing.options.failure.recv_idle_timeout_s = 2.0;
  crashing.options.recovery.enabled = true;
  crashing.options.recovery.checkpoint_every_batches = 4;

  ASSERT_OK_AND_ASSIGN(QueryTicketPtr replayed, service->Submit(crashing));
  ASSERT_OK(replayed->Wait().status);
  EXPECT_TRUE(ResultSetsEqual(replayed->Wait().results, expected));

  ASSERT_OK(service->Resize(2));

  ServeQuery plain;
  plain.spec = spec;
  plain.algorithm = AlgorithmKind::kAdaptiveTwoPhase;
  ASSERT_OK_AND_ASSIGN(QueryTicketPtr after, service->Submit(plain));
  const RunResult& run = after->Wait();
  ASSERT_OK(run.status);
  EXPECT_TRUE(ResultSetsEqual(run.results, expected));

  service->Shutdown();
}

}  // namespace
}  // namespace adaptagg
