#include "serve/result_cache.h"

#include <gtest/gtest.h>

#include "exec/expression.h"
#include "test_util.h"
#include "workload/generator.h"

namespace adaptagg {
namespace {

ResultCache::Key MakeKey(uint64_t version, const std::string& fp) {
  ResultCache::Key key;
  key.relation_version = version;
  key.fingerprint = fp;
  return key;
}

ResultCache::Entry MakeEntry(double sim_time_s) {
  ResultCache::Entry e;
  e.sim_time_s = sim_time_s;
  return e;
}

TEST(ResultCache, InsertLookupRoundTrip) {
  ResultCache cache(4);
  cache.Insert(MakeKey(1, "q"), MakeEntry(1.5));
  auto hit = cache.Lookup(MakeKey(1, "q"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->sim_time_s, 1.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, VersionIsPartOfTheKey) {
  ResultCache cache(4);
  cache.Insert(MakeKey(1, "q"), MakeEntry(1.0));
  // Same query against a mutated relation: the bumped version can never
  // find the stale entry.
  EXPECT_FALSE(cache.Lookup(MakeKey(2, "q")).has_value());
  EXPECT_FALSE(cache.Lookup(MakeKey(1, "other")).has_value());
  EXPECT_TRUE(cache.Lookup(MakeKey(1, "q")).has_value());
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.Insert(MakeKey(1, "a"), MakeEntry(1.0));
  cache.Insert(MakeKey(1, "b"), MakeEntry(2.0));
  // Touch "a" so "b" becomes the LRU victim.
  ASSERT_TRUE(cache.Lookup(MakeKey(1, "a")).has_value());
  cache.Insert(MakeKey(1, "c"), MakeEntry(3.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Lookup(MakeKey(1, "a")).has_value());
  EXPECT_FALSE(cache.Lookup(MakeKey(1, "b")).has_value());
  EXPECT_TRUE(cache.Lookup(MakeKey(1, "c")).has_value());
}

TEST(ResultCache, ReinsertRefreshesInsteadOfDuplicating) {
  ResultCache cache(2);
  cache.Insert(MakeKey(1, "a"), MakeEntry(1.0));
  cache.Insert(MakeKey(1, "a"), MakeEntry(9.0));
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.Lookup(MakeKey(1, "a"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->sim_time_s, 9.0);
}

TEST(ResultCache, InvalidateAllDropsEverything) {
  ResultCache cache(4);
  cache.Insert(MakeKey(1, "a"), MakeEntry(1.0));
  cache.Insert(MakeKey(2, "b"), MakeEntry(2.0));
  cache.InvalidateAll();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(MakeKey(1, "a")).has_value());
  EXPECT_FALSE(cache.Lookup(MakeKey(2, "b")).has_value());
}

TEST(ResultCache, ZeroCapacityDisablesTheCache) {
  ResultCache cache(0);
  cache.Insert(MakeKey(1, "a"), MakeEntry(1.0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(MakeKey(1, "a")).has_value());
}

TEST(ResultCache, AdmissionFloorSkipsCheapQueries) {
  // 100 us floor: a 50 us query is served but never cached, a 100 us
  // query is admitted (the floor is inclusive).
  ResultCache cache(4, /*min_cost_us=*/100);
  EXPECT_FALSE(cache.Insert(MakeKey(1, "cheap"), MakeEntry(50e-6)));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.skipped_cheap(), 1u);
  EXPECT_FALSE(cache.Lookup(MakeKey(1, "cheap")).has_value());

  EXPECT_TRUE(cache.Insert(MakeKey(1, "costly"), MakeEntry(100e-6)));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.skipped_cheap(), 1u);
  EXPECT_TRUE(cache.Lookup(MakeKey(1, "costly")).has_value());
}

TEST(ResultCache, ZeroFloorAdmitsEverything) {
  ResultCache cache(4);
  EXPECT_TRUE(cache.Insert(MakeKey(1, "free"), MakeEntry(0.0)));
  EXPECT_EQ(cache.skipped_cheap(), 0u);
}

TEST(ResultCache, FloorRefusalsDoNotEvict) {
  // A stream of cheap queries must not churn the resident hot entries.
  ResultCache cache(2, /*min_cost_us=*/10);
  EXPECT_TRUE(cache.Insert(MakeKey(1, "hot"), MakeEntry(1.0)));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(
        cache.Insert(MakeKey(1, "cheap" + std::to_string(i)),
                     MakeEntry(1e-6)));
  }
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.skipped_cheap(), 100u);
  EXPECT_TRUE(cache.Lookup(MakeKey(1, "hot")).has_value());
}

TEST(QueryFingerprint, IgnoresHowAndCapturesWhat) {
  Schema schema = MakeBenchSchema(100);
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec, MakeBenchQuery(&schema));
  AlgorithmOptions options;

  const std::string base = QueryFingerprint(spec, options);
  EXPECT_FALSE(base.empty());

  // Tuning knobs change how the result is computed, never what it is —
  // two submissions differing only in M are the same cached query.
  AlgorithmOptions tuned = options;
  tuned.max_hash_entries = 17;
  tuned.query_id = 99;
  EXPECT_EQ(QueryFingerprint(spec, tuned), base);

  // Predicates change the result set, so they change the fingerprint.
  AlgorithmOptions filtered = options;
  filtered.where = Gt(Col(kBenchGroupCol), Lit(int64_t{5}));
  EXPECT_NE(QueryFingerprint(spec, filtered), base);

  AlgorithmOptions strained = options;
  strained.having = Gt(Col(0), Lit(int64_t{5}));
  EXPECT_NE(QueryFingerprint(spec, strained), base);
  EXPECT_NE(QueryFingerprint(spec, strained),
            QueryFingerprint(spec, filtered));

  // And so does the aggregation itself (DISTINCT = zero aggregates).
  ASSERT_OK_AND_ASSIGN(
      AggregationSpec distinct,
      AggregationSpec::Make(&schema, {kBenchGroupCol}, {}));
  EXPECT_NE(QueryFingerprint(distinct, options), base);
}

}  // namespace
}  // namespace adaptagg
