#include "net/session_router.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace adaptagg {
namespace {

Message MakeFrame(MessageType type, const std::string& payload) {
  Message msg;
  msg.type = type;
  msg.seq = 1;
  msg.payload.assign(payload.begin(), payload.end());
  return msg;
}

std::string PayloadOf(const Message& msg) {
  return std::string(msg.payload.begin(), msg.payload.end());
}

TEST(SessionRouter, RejectsReservedAndDuplicateIds) {
  SessionRouter router(MakeInprocMesh(2));
  EXPECT_FALSE(router.OpenSession(0).ok());
  ASSERT_OK_AND_ASSIGN(auto first, router.OpenSession(7));
  EXPECT_FALSE(router.OpenSession(7).ok());
  router.CloseSession(7);
  // A closed id is free again (ids are not reused by the service, but
  // the router itself only cares about currently-open sessions).
  EXPECT_TRUE(router.OpenSession(7).ok());
}

TEST(SessionRouter, ConcurrentSessionsNeverCrossTalk) {
  SessionRouter router(MakeInprocMesh(2));
  ASSERT_OK_AND_ASSIGN(auto a, router.OpenSession(7));
  ASSERT_OK_AND_ASSIGN(auto b, router.OpenSession(8));

  // Both sessions send node0 → node1 on the shared physical mesh.
  ASSERT_OK(a[0]->Send(1, MakeFrame(MessageType::kControl, "session-7")));
  ASSERT_OK(b[0]->Send(1, MakeFrame(MessageType::kControl, "session-8")));

  // Each session's node-1 endpoint sees exactly its own frame, tagged
  // with its own query id.
  ASSERT_OK_AND_ASSIGN(Message ma, a[1]->RecvWithDeadline(5.0));
  EXPECT_EQ(ma.query_id, 7u);
  EXPECT_EQ(PayloadOf(ma), "session-7");
  EXPECT_EQ(ma.from, 0);

  ASSERT_OK_AND_ASSIGN(Message mb, b[1]->RecvWithDeadline(5.0));
  EXPECT_EQ(mb.query_id, 8u);
  EXPECT_EQ(PayloadOf(mb), "session-8");

  // Nothing else arrives on either inbox.
  EXPECT_FALSE(a[1]->TryRecv().has_value());
  EXPECT_FALSE(b[1]->TryRecv().has_value());
}

TEST(SessionRouter, HeartbeatsAreSharedAcrossSessions) {
  SessionRouter router(MakeInprocMesh(2));
  ASSERT_OK_AND_ASSIGN(auto a, router.OpenSession(7));
  ASSERT_OK_AND_ASSIGN(auto b, router.OpenSession(8));

  ASSERT_OK(a[0]->Send(1, MakeFrame(MessageType::kHeartbeat, "")));

  // The owning session receives the sequenced original...
  ASSERT_OK_AND_ASSIGN(Message orig, a[1]->RecvWithDeadline(5.0));
  EXPECT_EQ(orig.type, MessageType::kHeartbeat);
  EXPECT_EQ(orig.query_id, 7u);
  EXPECT_EQ(orig.seq, 1u);

  // ...and the co-resident session an unsequenced (seq=0) copy, which
  // is what lets one session's beacons feed every neighbor's failure
  // detector.
  ASSERT_OK_AND_ASSIGN(Message copy, b[1]->RecvWithDeadline(5.0));
  EXPECT_EQ(copy.type, MessageType::kHeartbeat);
  EXPECT_EQ(copy.seq, 0u);
  EXPECT_EQ(copy.from, 0);
  EXPECT_GE(router.heartbeats_shared(), 1u);

  // Data frames are never fanned out this way.
  ASSERT_OK(a[0]->Send(1, MakeFrame(MessageType::kControl, "data")));
  ASSERT_OK_AND_ASSIGN(Message data, a[1]->RecvWithDeadline(5.0));
  EXPECT_EQ(PayloadOf(data), "data");
  EXPECT_FALSE(b[1]->TryRecv().has_value());
}

TEST(SessionRouter, LateFramesAreDroppedAndCounted) {
  SessionRouter router(MakeInprocMesh(2));
  ASSERT_OK_AND_ASSIGN(auto a, router.OpenSession(7));
  router.CloseSession(7);

  // The endpoint outlives CloseSession; its traffic still reaches the
  // physical mesh but no longer has a registered inbox.
  ASSERT_OK(a[0]->Send(1, MakeFrame(MessageType::kControl, "late")));
  for (int i = 0; i < 200 && router.late_frames_dropped() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(router.late_frames_dropped(), 1u);
  EXPECT_FALSE(a[1]->TryRecv().has_value());
}

TEST(SessionRouter, FailStopIsPerSessionEndpoint) {
  SessionRouter router(MakeInprocMesh(2));
  ASSERT_OK_AND_ASSIGN(auto a, router.OpenSession(7));
  ASSERT_OK_AND_ASSIGN(auto b, router.OpenSession(8));

  a[0]->SimulateFailStop();
  // The dead endpoint swallows sends (a crashed node notifies nobody)...
  ASSERT_OK(a[0]->Send(1, MakeFrame(MessageType::kControl, "never")));
  // ...while the co-resident session on the same physical node is
  // unaffected.
  ASSERT_OK(b[0]->Send(1, MakeFrame(MessageType::kControl, "alive")));
  ASSERT_OK_AND_ASSIGN(Message mb, b[1]->RecvWithDeadline(5.0));
  EXPECT_EQ(PayloadOf(mb), "alive");
  EXPECT_FALSE(a[1]->TryRecv().has_value());
}

TEST(SessionRouter, StopJoinsDemuxThreadsIdempotently) {
  SessionRouter router(MakeInprocMesh(3));
  EXPECT_EQ(router.num_nodes(), 3);
  for (int i = 0; i < 200 && router.alive_demux_threads() != 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(router.alive_demux_threads(), 3);
  router.Stop();
  EXPECT_EQ(router.alive_demux_threads(), 0);
  router.Stop();  // idempotent
  EXPECT_EQ(router.alive_demux_threads(), 0);
}

}  // namespace
}  // namespace adaptagg
