#include "serve/cluster_service.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/run_report.h"
#include "core/algorithm.h"
#include "exec/expression.h"
#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

Result<PartitionedRelation> MakeServedRelation(int nodes = 4,
                                               int64_t tuples = 20'000,
                                               int64_t groups = 1'000) {
  WorkloadSpec workload;
  workload.num_nodes = nodes;
  workload.num_tuples = tuples;
  workload.num_groups = groups;
  return GenerateRelation(workload);
}

/// Test algorithm that parks every node thread until released: lets the
/// admission tests hold queries in flight for as long as they need.
class GateAlgorithm : public Algorithm {
 public:
  std::string name() const override { return "test-gate"; }

  Status RunNode(NodeContext& ctx) const override {
    (void)ctx;
    started_.fetch_add(1, std::memory_order_acq_rel);
    while (!release_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Status::OK();
  }

  void Release() { release_.store(true, std::memory_order_release); }

  int started() const { return started_.load(std::memory_order_acquire); }

 private:
  mutable std::atomic<int> started_{0};
  std::atomic<bool> release_{false};
};

// The tentpole guarantee: queries running concurrently through the
// serving layer produce byte-identical results — and identical modeled
// times — to the same queries run one at a time through the one-shot
// engine. Session isolation (namespaced exchange, scoped disks, private
// obs shards) is what makes this hold.
TEST(ClusterService, ConcurrentQueriesMatchSequentialRuns) {
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, MakeServedRelation());
  const SystemParams params = SmallClusterParams(4, 20'000);

  // Four query shapes: the plain bench query plus three WHERE filters.
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  std::vector<AlgorithmOptions> shapes(4);
  shapes[1].where = Gt(Col(kBenchGroupCol), Lit(int64_t{100}));
  shapes[2].where = Gt(Col(kBenchGroupCol), Lit(int64_t{500}));
  shapes[3].where = Gt(Col(kBenchGroupCol), Lit(int64_t{900}));

  // Sequential baseline: one-shot Cluster::Run per shape.
  std::vector<RunResult> solo;
  for (const AlgorithmOptions& options : shapes) {
    Cluster cluster(params);
    solo.push_back(cluster.Run(
        *MakeAlgorithm(AlgorithmKind::kAdaptiveTwoPhase), spec, rel,
        options));
    ASSERT_OK(solo.back().status);
  }

  // Served: two copies of every shape submitted from concurrent client
  // threads, cache off so each one actually executes.
  ServiceConfig config;
  config.params = params;
  config.cache_entries = 0;
  config.scheduler.max_inflight = 4;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ClusterService> service,
                       ClusterService::Start(config, &rel));

  constexpr int kCopies = 2;
  std::vector<QueryTicketPtr> tickets(shapes.size() * kCopies);
  std::vector<std::thread> clients;
  for (int copy = 0; copy < kCopies; ++copy) {
    clients.emplace_back([&, copy] {
      for (size_t i = 0; i < shapes.size(); ++i) {
        ServeQuery query;
        query.spec = spec;
        query.algorithm = AlgorithmKind::kAdaptiveTwoPhase;
        query.options = shapes[i];
        auto ticket = service->Submit(std::move(query));
        ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
        tickets[static_cast<size_t>(copy) * shapes.size() + i] = *ticket;
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (size_t i = 0; i < tickets.size(); ++i) {
    const RunResult& run = tickets[i]->Wait();
    const RunResult& expected = solo[i % shapes.size()];
    ASSERT_OK(run.status);
    EXPECT_FALSE(run.from_cache);
    EXPECT_NE(run.query_id, 0u);
    EXPECT_TRUE(ResultSetsEqual(run.results, expected.results))
        << "shape " << i % shapes.size() << ": got "
        << run.results.num_rows() << " rows, expected "
        << expected.results.num_rows();
    // Modeled-time parity: running beside neighbors must not change
    // what the cost model says the query costs. Tolerance, not exact
    // equality: clock totals are double sums accumulated in message
    // arrival order, which jitters at the ~1e-15 level even between two
    // identical one-shot runs.
    EXPECT_NEAR(run.sim_time_s, expected.sim_time_s, 1e-9)
        << "shape " << i % shapes.size();
  }

  MetricsSnapshot metrics = service->Metrics();
  EXPECT_EQ(metrics.Value("serve.admitted"),
            static_cast<int64_t>(tickets.size()));
  EXPECT_EQ(metrics.Value("serve.completed"),
            static_cast<int64_t>(tickets.size()));
  EXPECT_EQ(metrics.Value("serve.aborted"), 0);
  EXPECT_GE(metrics.Value("serve.inflight_high_water"), 2);

  service->Shutdown();
  EXPECT_EQ(service->resident_threads(), 0);
}

TEST(ClusterService, ResubmissionIsServedFromTheCache) {
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                       MakeServedRelation(2, 6'000, 300));
  ServiceConfig config;
  config.params = SmallClusterParams(2, 6'000);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ClusterService> service,
                       ClusterService::Start(config, &rel));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));

  ServeQuery first;
  first.spec = spec;
  ASSERT_OK_AND_ASSIGN(QueryTicketPtr miss, service->Submit(first));
  const RunResult& executed = miss->Wait();
  ASSERT_OK(executed.status);
  EXPECT_FALSE(executed.from_cache);

  // Same fingerprint, different algorithm: still a hit — every
  // algorithm computes the same rows, so the algorithm choice is
  // deliberately not part of the cache key.
  ServeQuery second;
  second.spec = spec;
  second.algorithm = AlgorithmKind::kTwoPhase;
  ASSERT_OK_AND_ASSIGN(QueryTicketPtr hit, service->Submit(second));
  const RunResult& cached = hit->Wait();
  ASSERT_OK(cached.status);
  EXPECT_TRUE(cached.from_cache);
  EXPECT_TRUE(ResultSetsEqual(cached.results, executed.results));

  // The per-query report labels carry the session id and cache bit.
  EXPECT_NE(RunSummaryLine(executed).find("qid="), std::string::npos);
  EXPECT_EQ(RunSummaryLine(executed).find("cached=1"), std::string::npos);
  EXPECT_NE(RunSummaryLine(cached).find("cached=1"), std::string::npos);
  EXPECT_NE(RunReport(cached).find("served from result cache"),
            std::string::npos);

  MetricsSnapshot metrics = service->Metrics();
  EXPECT_EQ(metrics.Value("serve.cache.hits"), 1);
  EXPECT_GE(metrics.Value("serve.cache.misses"), 1);
}

TEST(ClusterService, RelationMutationInvalidatesCachedResults) {
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                       MakeServedRelation(2, 6'000, 300));
  ServiceConfig config;
  config.params = SmallClusterParams(2, 6'000);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ClusterService> service,
                       ClusterService::Start(config, &rel));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));

  ServeQuery query;
  query.spec = spec;
  ASSERT_OK_AND_ASSIGN(QueryTicketPtr warm, service->Submit(query));
  const RunResult& before = warm->Wait();
  ASSERT_OK(before.status);

  ASSERT_OK_AND_ASSIGN(QueryTicketPtr hit, service->Submit(query));
  EXPECT_TRUE(hit->Wait().from_cache);

  // Mutate the relation: Append bumps the version, so the cached entry
  // can never be looked up again — the next submission re-executes and
  // sees the new tuple.
  const uint64_t version_before = rel.version();
  TupleBuffer t(&rel.schema());
  t.SetInt64(kBenchGroupCol, 0);
  t.SetInt64(kBenchValueCol, 1);
  ASSERT_OK(rel.Append(0, t.view()));
  ASSERT_OK(rel.Flush());
  EXPECT_GT(rel.version(), version_before);

  ASSERT_OK_AND_ASSIGN(QueryTicketPtr fresh, service->Submit(query));
  const RunResult& after = fresh->Wait();
  ASSERT_OK(after.status);
  EXPECT_FALSE(after.from_cache);
  EXPECT_FALSE(ResultSetsEqual(after.results, before.results));

  // The explicit hook drops entries for out-of-band mutation too.
  service->InvalidateCache();
  ASSERT_OK_AND_ASSIGN(QueryTicketPtr again, service->Submit(query));
  EXPECT_FALSE(again->Wait().from_cache);
}

TEST(ClusterService, BoundedQueueRejectsWithBackpressure) {
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                       MakeServedRelation(2, 2'000, 100));
  ServiceConfig config;
  config.params = SmallClusterParams(2, 2'000);
  config.cache_entries = 0;
  config.scheduler.max_inflight = 1;
  config.scheduler.queue_capacity = 1;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ClusterService> service,
                       ClusterService::Start(config, &rel));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));

  GateAlgorithm gate;
  ServeQuery query;
  query.spec = spec;
  query.custom_algorithm = &gate;

  // First query occupies the single slot...
  ASSERT_OK_AND_ASSIGN(QueryTicketPtr running, service->Submit(query));
  for (int i = 0; i < 2'000 && gate.started() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(gate.started(), 2);  // both node threads are parked

  // ...the second fills the queue...
  ASSERT_OK_AND_ASSIGN(QueryTicketPtr queued, service->Submit(query));
  EXPECT_FALSE(queued->done());

  // ...and the third bounces with kResourceExhausted.
  auto rejected = service->Submit(query);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rejected.status().message().find("queue"), std::string::npos)
      << rejected.status().ToString();

  gate.Release();
  ASSERT_OK(running->Wait().status);
  ASSERT_OK(queued->Wait().status);

  MetricsSnapshot metrics = service->Metrics();
  EXPECT_EQ(metrics.Value("serve.admitted"), 2);
  EXPECT_EQ(metrics.Value("serve.rejected.queue_full"), 1);
  EXPECT_GE(metrics.Value("serve.queue_depth_high_water"), 1);
}

TEST(ClusterService, OversizedQueryIsRejectedByTheMemoryBudget) {
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                       MakeServedRelation(2, 2'000, 100));
  const SystemParams params = SmallClusterParams(2, 2'000);
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));

  ServiceConfig config;
  config.params = params;
  config.scheduler.memory_budget_bytes =
      EstimateQueryMemoryBytes(spec, AlgorithmOptions{}, params) - 1;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ClusterService> service,
                       ClusterService::Start(config, &rel));

  ServeQuery query;
  query.spec = spec;
  auto rejected = service->Submit(query);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rejected.status().message().find("memory"), std::string::npos)
      << rejected.status().ToString();
  EXPECT_EQ(service->Metrics().Value("serve.rejected.memory"), 1);

  // A smaller per-query hash bound brings the same query under budget.
  query.options.max_hash_entries = params.max_hash_entries / 2;
  ASSERT_OK_AND_ASSIGN(QueryTicketPtr admitted, service->Submit(query));
  ASSERT_OK(admitted->Wait().status);
}

TEST(ClusterService, ShutdownDrainsInflightAndFailsQueued) {
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                       MakeServedRelation(2, 2'000, 100));
  ServiceConfig config;
  config.params = SmallClusterParams(2, 2'000);
  config.cache_entries = 0;
  config.scheduler.max_inflight = 1;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ClusterService> service,
                       ClusterService::Start(config, &rel));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));

  GateAlgorithm gate;
  ServeQuery query;
  query.spec = spec;
  query.custom_algorithm = &gate;

  ASSERT_OK_AND_ASSIGN(QueryTicketPtr running, service->Submit(query));
  for (int i = 0; i < 2'000 && gate.started() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_OK_AND_ASSIGN(QueryTicketPtr queued, service->Submit(query));

  std::thread shutdown([&] { service->Shutdown(); });
  // Shutdown drains: the in-flight query keeps running until released.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(running->done());
  gate.Release();
  shutdown.join();

  EXPECT_OK(running->Wait().status);
  const RunResult& bounced = queued->Wait();
  EXPECT_EQ(bounced.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service->resident_threads(), 0);

  // New submissions after shutdown are turned away at the door.
  auto late = service->Submit(query);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ClusterService, IdleServiceShutsDownCleanly) {
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                       MakeServedRelation(2, 2'000, 100));
  ServiceConfig config;
  config.params = SmallClusterParams(2, 2'000);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ClusterService> service,
                       ClusterService::Start(config, &rel));
  EXPECT_GT(service->resident_threads(), 0);
  service->Shutdown();
  EXPECT_EQ(service->resident_threads(), 0);
  service->Shutdown();  // idempotent; the destructor calls it again
  EXPECT_EQ(service->resident_threads(), 0);
}

TEST(ClusterService, StartValidatesShapeMismatch) {
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                       MakeServedRelation(2, 2'000, 100));
  ServiceConfig config;
  config.params = SmallClusterParams(4, 2'000);  // != rel's 2 partitions
  EXPECT_FALSE(ClusterService::Start(config, &rel).ok());

  config.params = SmallClusterParams(2, 2'000);
  config.scheduler.max_inflight = 0;
  EXPECT_FALSE(ClusterService::Start(config, &rel).ok());
}

TEST(ClusterService, TicketCarriesLatencyStamps) {
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                       MakeServedRelation(2, 2'000, 100));
  ServiceConfig config;
  config.params = SmallClusterParams(2, 2'000);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ClusterService> service,
                       ClusterService::Start(config, &rel));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));

  ServeQuery query;
  query.spec = spec;
  ASSERT_OK_AND_ASSIGN(QueryTicketPtr ticket, service->Submit(query));
  ASSERT_OK(ticket->Wait().status);
  EXPECT_TRUE(ticket->done());
  EXPECT_GT(ticket->submit_wall_s(), 0.0);
  EXPECT_GE(ticket->complete_wall_s(), ticket->submit_wall_s());
}

}  // namespace
}  // namespace adaptagg
