#include "sort/external_sorter.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "common/random.h"

namespace adaptagg {
namespace {

class ExternalSorterTest : public ::testing::Test {
 protected:
  ExternalSorterTest() : disk_(512) {}

  // 16-byte records: [int64 key][int64 payload]; key compared as the
  // big-endian-agnostic memcmp order of its little-endian bytes is NOT
  // numeric order, so tests use non-negative keys built to make memcmp
  // order meaningful via a big-endian encoding helper.
  static std::vector<uint8_t> Rec(uint64_t key, int64_t payload) {
    std::vector<uint8_t> r(16);
    // Store the key big-endian so memcmp order == numeric order.
    for (int i = 0; i < 8; ++i) {
      r[static_cast<size_t>(i)] =
          static_cast<uint8_t>(key >> (8 * (7 - i)));
    }
    std::memcpy(r.data() + 8, &payload, 8);
    return r;
  }

  static uint64_t KeyOf(const uint8_t* rec) {
    uint64_t k = 0;
    for (int i = 0; i < 8; ++i) k = (k << 8) | rec[i];
    return k;
  }

  SimDisk disk_;
};

TEST_F(ExternalSorterTest, InMemoryOnlySorts) {
  ExternalSorter sorter(&disk_, 16, 0, 8, /*max_records=*/100, "s");
  for (uint64_t k : {5ULL, 1ULL, 9ULL, 3ULL, 7ULL}) {
    ASSERT_TRUE(sorter.Add(Rec(k, 0).data()).ok());
  }
  EXPECT_EQ(sorter.num_runs(), 0);
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  std::vector<uint64_t> got;
  while (const uint8_t* r = stream->Next()) got.push_back(KeyOf(r));
  EXPECT_EQ(got, (std::vector<uint64_t>{1, 3, 5, 7, 9}));
  EXPECT_EQ(sorter.run_pages_written(), 0);
}

TEST_F(ExternalSorterTest, SpillsRunsAndMerges) {
  ExternalSorter sorter(&disk_, 16, 0, 8, /*max_records=*/64, "s");
  Prng prng(7);
  constexpr int kCount = 2'000;
  std::map<uint64_t, int> expected;
  for (int i = 0; i < kCount; ++i) {
    uint64_t k = prng.NextBelow(500);
    ++expected[k];
    ASSERT_TRUE(sorter.Add(Rec(k, i).data()).ok());
  }
  EXPECT_GT(sorter.num_runs(), 10);
  EXPECT_GT(sorter.run_pages_written(), 0);

  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  uint64_t prev = 0;
  int64_t count = 0;
  std::map<uint64_t, int> got;
  while (const uint8_t* r = stream->Next()) {
    uint64_t k = KeyOf(r);
    EXPECT_GE(k, prev) << "out of order at record " << count;
    prev = k;
    ++got[k];
    ++count;
  }
  ASSERT_TRUE(stream->status().ok());
  EXPECT_EQ(count, kCount);
  EXPECT_EQ(got, expected);
}

TEST_F(ExternalSorterTest, EmptyInput) {
  ExternalSorter sorter(&disk_, 16, 0, 8, 10, "s");
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->Next(), nullptr);
}

TEST_F(ExternalSorterTest, DuplicateKeysAllSurvive) {
  ExternalSorter sorter(&disk_, 16, 0, 8, /*max_records=*/8, "s");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(sorter.Add(Rec(42, i).data()).ok());
  }
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  int64_t payload_sum = 0;
  int count = 0;
  while (const uint8_t* r = stream->Next()) {
    EXPECT_EQ(KeyOf(r), 42u);
    int64_t p;
    std::memcpy(&p, r + 8, 8);
    payload_sum += p;
    ++count;
  }
  EXPECT_EQ(count, 100);
  EXPECT_EQ(payload_sum, 99 * 100 / 2);
}

TEST_F(ExternalSorterTest, KeyInMiddleOfRecord) {
  // key_offset > 0: sort 24-byte records by bytes [8, 16).
  ExternalSorter sorter(&disk_, 24, 8, 8, 4, "s");
  for (uint64_t k : {3ULL, 1ULL, 2ULL, 9ULL, 0ULL, 5ULL}) {
    std::vector<uint8_t> r(24, 0xEE);
    for (int i = 0; i < 8; ++i) {
      r[static_cast<size_t>(8 + i)] =
          static_cast<uint8_t>(k >> (8 * (7 - i)));
    }
    ASSERT_TRUE(sorter.Add(r.data()).ok());
  }
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  std::vector<uint64_t> got;
  while (const uint8_t* r = stream->Next()) {
    uint64_t k = 0;
    for (int i = 0; i < 8; ++i) k = (k << 8) | r[8 + i];
    got.push_back(k);
  }
  EXPECT_EQ(got, (std::vector<uint64_t>{0, 1, 2, 3, 5, 9}));
}

TEST_F(ExternalSorterTest, StableAcrossPageBoundaries) {
  // Records per 512-byte page: (512-4)/16 = 31; runs of 40 span pages.
  ExternalSorter sorter(&disk_, 16, 0, 8, 40, "s");
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        sorter.Add(Rec(static_cast<uint64_t>(500 - i), i).data()).ok());
  }
  auto stream = sorter.Finish();
  ASSERT_TRUE(stream.ok());
  uint64_t prev = 0;
  int count = 0;
  while (const uint8_t* r = stream->Next()) {
    EXPECT_GE(KeyOf(r), prev);
    prev = KeyOf(r);
    ++count;
  }
  EXPECT_EQ(count, 500);
}

}  // namespace
}  // namespace adaptagg
