#include "model/recovery_model.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

TEST(RecoveryModelTest, IntervalIsAlwaysInRange) {
  SystemParams p = SmallClusterParams(8, 1'000'000);
  for (int64_t groups : {int64_t{1}, int64_t{100}, int64_t{10'000},
                         int64_t{10'000'000}}) {
    for (int64_t width : {int64_t{16}, int64_t{64}, int64_t{256}}) {
      CheckpointDecision d = DecideCheckpointInterval(p, groups, width);
      EXPECT_GE(d.every_batches, 1) << groups << "/" << width;
      EXPECT_LE(d.every_batches, 4096) << groups << "/" << width;
    }
  }
}

TEST(RecoveryModelTest, BiggerSnapshotsCheckpointLessOften) {
  // More resident groups = a more expensive snapshot = the Young-style
  // balance point moves toward rarer checkpoints.
  SystemParams p = SmallClusterParams(8, 1'000'000);
  const CheckpointDecision small =
      DecideCheckpointInterval(p, /*est_groups=*/100, /*partial_bytes=*/64);
  const CheckpointDecision large = DecideCheckpointInterval(
      p, /*est_groups=*/1'000'000, /*partial_bytes=*/64);
  EXPECT_LT(small.checkpoint_cost_s, large.checkpoint_cost_s);
  EXPECT_LE(small.every_batches, large.every_batches);
}

TEST(RecoveryModelTest, DecisionIsDeterministic) {
  // The interval choice is a pure function of its arguments: same
  // inputs, same decision, every time. This is what lets checkpointing
  // run without perturbing modeled results.
  SystemParams p = SmallClusterParams(4, 200'000);
  const CheckpointDecision a = DecideCheckpointInterval(p, 5'000, 48);
  const CheckpointDecision b = DecideCheckpointInterval(p, 5'000, 48);
  EXPECT_EQ(a.every_batches, b.every_batches);
  EXPECT_EQ(a.checkpoint_cost_s, b.checkpoint_cost_s);
  EXPECT_EQ(a.batch_cost_s, b.batch_cost_s);
}

TEST(RecoveryModelTest, CostsArePositive) {
  SystemParams p = SmallClusterParams(4, 200'000);
  const CheckpointDecision d = DecideCheckpointInterval(p, 1'000, 64);
  EXPECT_GT(d.checkpoint_cost_s, 0.0);
  EXPECT_GT(d.batch_cost_s, 0.0);
}

}  // namespace
}  // namespace adaptagg
