// Golden pins of DecideMergeTopology's switch points. Each test sits on
// one side of a published threshold (merge_model.h) so any recalibration
// of the cost model shows up as an explicit diff here, never as a silent
// behavior change.

#include "model/merge_model.h"

#include <gtest/gtest.h>

namespace adaptagg {
namespace {

MergeDecisionInputs Base() {
  MergeDecisionInputs in;
  in.est_groups = 100;
  in.num_nodes = 4;
  in.skew_q8 = 256;
  in.inproc = false;
  in.use_repartitioning = false;
  in.max_hash_entries = 1'024;
  in.slot_bytes = 24;
  in.radix_llc_bytes = -1;
  return in;
}

TEST(MergeModel, MissingEstimateStaysSeed) {
  MergeDecisionInputs in = Base();
  in.est_groups = 0;
  EXPECT_EQ(DecideMergeTopology(in).topology, MergeTopology::kSeed);
  in.est_groups = -5;
  EXPECT_EQ(DecideMergeTopology(in).topology, MergeTopology::kSeed);
}

TEST(MergeModel, SingleNodeStaysSeed) {
  MergeDecisionInputs in = Base();
  in.num_nodes = 1;
  in.est_groups = 50'000;
  in.inproc = true;
  EXPECT_EQ(DecideMergeTopology(in).topology, MergeTopology::kSeed);
}

TEST(MergeModel, RadixEngagesWhenPerOwnerShareBustsTheLlc) {
  // 1000 groups over 2 nodes: the per-owner share of 500 slots times
  // (24 + bucket) bytes overflows a 1 KiB LLC budget, so the merge-side
  // radix staging engages — and wins over every later branch.
  MergeDecisionInputs in = Base();
  in.est_groups = 1'000;
  in.num_nodes = 2;
  in.radix_llc_bytes = 1'024;
  EXPECT_EQ(DecideMergeTopology(in).topology, MergeTopology::kRadix);

  // Same inputs under the default 32 MiB budget: nothing engages and the
  // decision falls through to seed (n < kTreeMinNodes, not inproc).
  in.radix_llc_bytes = -1;
  EXPECT_EQ(DecideMergeTopology(in).topology, MergeTopology::kSeed);
}

TEST(MergeModel, RepartitioningPinsSeedEvenWhenTreeWouldApply) {
  MergeDecisionInputs in = Base();
  in.num_nodes = 8;
  in.est_groups = 512;  // == kTreeGroupsPerNodeCeiling * 8
  in.use_repartitioning = true;
  EXPECT_EQ(DecideMergeTopology(in).topology, MergeTopology::kSeed);
  in.use_repartitioning = false;
  EXPECT_EQ(DecideMergeTopology(in).topology, MergeTopology::kTree);
}

TEST(MergeModel, NoSpillGateBoundsEveryNonSeedTopology) {
  // n*M = 2048 total entries; est * kNoSpillMargin crosses it between
  // 1024 and 1025, flipping an otherwise-shared decision back to seed.
  MergeDecisionInputs in = Base();
  in.num_nodes = 4;
  in.max_hash_entries = 512;
  in.inproc = true;
  in.est_groups = 1'024;
  EXPECT_EQ(DecideMergeTopology(in).topology, MergeTopology::kShared);
  in.est_groups = 1'025;
  EXPECT_EQ(DecideMergeTopology(in).topology, MergeTopology::kSeed);
}

TEST(MergeModel, TreeGroupCeilingBoundary) {
  MergeDecisionInputs in = Base();
  in.num_nodes = 8;
  in.est_groups = kTreeGroupsPerNodeCeiling * 8;  // 512: last tree value
  EXPECT_EQ(DecideMergeTopology(in).topology, MergeTopology::kTree);
  in.est_groups += 1;  // 513: too many groups for the message-bound case
  EXPECT_EQ(DecideMergeTopology(in).topology, MergeTopology::kSeed);
}

TEST(MergeModel, TreeNeedsEnoughNodes) {
  MergeDecisionInputs in = Base();
  in.num_nodes = kTreeMinNodes;
  in.est_groups = 256;
  EXPECT_EQ(DecideMergeTopology(in).topology, MergeTopology::kTree);
  in.num_nodes = kTreeMinNodes - 1;
  EXPECT_EQ(DecideMergeTopology(in).topology, MergeTopology::kSeed);
}

TEST(MergeModel, SharedMinGroupsBoundary) {
  MergeDecisionInputs in = Base();
  in.inproc = true;
  in.skew_q8 = kSharedSkewMaxQ8;
  in.est_groups = kSharedMinGroups;
  EXPECT_EQ(DecideMergeTopology(in).topology, MergeTopology::kShared);
  in.est_groups = kSharedMinGroups - 1;
  EXPECT_EQ(DecideMergeTopology(in).topology, MergeTopology::kSeed);
}

TEST(MergeModel, SharedSkewBoundary) {
  MergeDecisionInputs in = Base();
  in.inproc = true;
  in.est_groups = kSharedMinGroups;
  in.skew_q8 = kSharedSkewMaxQ8;
  EXPECT_EQ(DecideMergeTopology(in).topology, MergeTopology::kShared);
  in.skew_q8 = kSharedSkewMaxQ8 + 1;
  EXPECT_EQ(DecideMergeTopology(in).topology, MergeTopology::kSeed);
}

TEST(MergeModel, SharedRequiresInprocTransport) {
  MergeDecisionInputs in = Base();
  in.inproc = false;
  in.est_groups = kSharedMinGroups;
  EXPECT_EQ(DecideMergeTopology(in).topology, MergeTopology::kSeed);
}

TEST(MergeModel, DecisionEchoesItsInputs) {
  MergeDecisionInputs in = Base();
  in.inproc = true;
  in.est_groups = 2'000;
  in.max_hash_entries = 4'096;
  in.skew_q8 = 300;
  const MergeDecision d = DecideMergeTopology(in);
  EXPECT_EQ(d.topology, MergeTopology::kShared);
  EXPECT_EQ(d.est_groups, 2'000);
  EXPECT_EQ(d.skew_q8, 300);
}

TEST(MergeModel, Names) {
  EXPECT_STREQ(MergeModeToString(MergeMode::kAuto), "auto");
  EXPECT_STREQ(MergeModeToString(MergeMode::kShared), "shared");
  EXPECT_STREQ(MergeTopologyToString(MergeTopology::kSeed), "seed");
  EXPECT_STREQ(MergeTopologyToString(MergeTopology::kTree), "tree");
  EXPECT_STREQ(MergeTopologyToString(MergeTopology::kRadix), "radix");
  EXPECT_STREQ(MergeTopologyToString(MergeTopology::kCentral), "central");
  EXPECT_STREQ(MergeTopologyToString(MergeTopology::kShared), "shared");
}

}  // namespace
}  // namespace adaptagg
