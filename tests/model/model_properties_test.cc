#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "model/cost_model.h"

namespace adaptagg {
namespace {

std::vector<double> SelectivitySweep() {
  // Log-spaced from one group to half the relation, as in the figures.
  std::vector<double> out;
  for (double s = 1.25e-7; s <= 0.5; s *= 4) out.push_back(s);
  out.push_back(0.5);
  return out;
}

CostModel MakeModel(NetworkKind net, int nodes = 32,
                    int64_t tuples = 8'000'000) {
  CostModel::Config cfg;
  cfg.params = SystemParams::Paper32();
  cfg.params.network = net;
  cfg.params.num_nodes = nodes;
  cfg.params.num_tuples = tuples;
  return CostModel(cfg);
}

// The paper's headline claim (Figure 3): each adaptive algorithm tracks
// the better of 2P and Rep across the whole selectivity range, within a
// modest overhead factor.
class AdaptiveTracksBest
    : public ::testing::TestWithParam<AlgorithmKind> {};

TEST_P(AdaptiveTracksBest, WithinFactorOfBestTraditional) {
  CostModel model = MakeModel(NetworkKind::kHighBandwidth);
  for (double s : SelectivitySweep()) {
    double best = std::min(model.Time(AlgorithmKind::kTwoPhase, s),
                           model.Time(AlgorithmKind::kRepartitioning, s));
    double adaptive = model.Time(GetParam(), s);
    EXPECT_LE(adaptive, 1.35 * best)
        << AlgorithmKindToString(GetParam()) << " at S=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Adaptive, AdaptiveTracksBest,
    ::testing::Values(AlgorithmKind::kSampling,
                      AlgorithmKind::kAdaptiveTwoPhase,
                      AlgorithmKind::kAdaptiveRepartitioning),
    [](const ::testing::TestParamInfo<AlgorithmKind>& info) {
      std::string name = AlgorithmKindToString(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// And the converse motivation (Figure 1): each traditional algorithm has
// a selectivity where it is clearly beaten.
TEST(TraditionalWeaknesses, EachStaticAlgorithmLosesSomewhere) {
  CostModel model = MakeModel(NetworkKind::kHighBandwidth);
  // 2P loses clearly at very high selectivity (duplicated work plus
  // overflow I/O; ~1.3x in this configuration).
  EXPECT_GT(model.Time(AlgorithmKind::kTwoPhase, 0.5),
            1.25 * model.Time(AlgorithmKind::kRepartitioning, 0.5));
  // Rep loses at scalar aggregation (all work lands on one node).
  EXPECT_GT(model.Time(AlgorithmKind::kRepartitioning, 1.25e-7),
            1.2 * model.Time(AlgorithmKind::kTwoPhase, 1.25e-7));
  // C-2P is no better than 2P anywhere, and much worse at high S.
  for (double s : SelectivitySweep()) {
    EXPECT_GE(model.Time(AlgorithmKind::kCentralizedTwoPhase, s) * 1.0001,
              model.Time(AlgorithmKind::kTwoPhase, s));
  }
}

TEST(Monotonicity, CostsGrowWithSelectivity) {
  CostModel model = MakeModel(NetworkKind::kHighBandwidth);
  for (AlgorithmKind kind :
       {AlgorithmKind::kTwoPhase, AlgorithmKind::kCentralizedTwoPhase,
        AlgorithmKind::kAdaptiveTwoPhase}) {
    double prev = 0;
    for (double s : SelectivitySweep()) {
      double t = model.Time(kind, s);
      EXPECT_GE(t, prev * 0.999)
          << AlgorithmKindToString(kind) << " at S=" << s;
      prev = t;
    }
  }
}

// Scaleup (Figures 5 and 6): growing the cluster and the relation
// together should keep per-query time roughly flat for the adaptive
// algorithms at both selectivity extremes.
class ScaleupProperty : public ::testing::TestWithParam<double> {};

TEST_P(ScaleupProperty, AdaptiveAlgorithmsScaleNearlyFlat) {
  const double selectivity = GetParam();
  const int64_t tuples_per_node = 250'000;
  for (AlgorithmKind kind : {AlgorithmKind::kAdaptiveTwoPhase,
                             AlgorithmKind::kAdaptiveRepartitioning}) {
    double t8 = 0, t64 = 0;
    for (int n : {8, 64}) {
      CostModel model = MakeModel(NetworkKind::kHighBandwidth, n,
                                  tuples_per_node * n);
      double t = model.Time(kind, selectivity);
      if (n == 8) {
        t8 = t;
      } else {
        t64 = t;
      }
    }
    EXPECT_LT(t64, 1.3 * t8)
        << AlgorithmKindToString(kind) << " S=" << selectivity;
  }
}

INSTANTIATE_TEST_SUITE_P(BothExtremes, ScaleupProperty,
                         ::testing::Values(2.0e-6, 0.25),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return info.param < 1e-3 ? "low" : "high";
                         });

TEST(Scaleup, SamplingOverheadGrowsWithClusterSize) {
  // §4: the crossover threshold is proportional to N, so the sampling
  // phase costs more on bigger clusters (the known suboptimal scaleup).
  const double s = 2.0e-6;
  CostModel m8 = MakeModel(NetworkKind::kHighBandwidth, 8, 2'000'000);
  CostModel m64 = MakeModel(NetworkKind::kHighBandwidth, 64, 16'000'000);
  EXPECT_GT(m64.Breakdown(AlgorithmKind::kSampling, s).sample_cost,
            m8.Breakdown(AlgorithmKind::kSampling, s).sample_cost);
}

TEST(LowBandwidth, AdaptiveTwoPhaseResistsSlowNetworkBetterThanRep) {
  // Figure 4's message: on Ethernet, Rep drowns in wire time while A-2P
  // only repartitions what would otherwise spill.
  CostModel::Config cfg;
  cfg.params = SystemParams::Cluster8();
  CostModel model(cfg);
  for (double s : {1e-5, 1e-3}) {
    EXPECT_LT(model.Time(AlgorithmKind::kAdaptiveTwoPhase, s),
              model.Time(AlgorithmKind::kRepartitioning, s))
        << s;
  }
}

TEST(SampleSizeTradeoff, BiggerSamplesCostMoreButFixBorderlineCalls) {
  // Figure 7's trade-off: sampling cost rises with sample size.
  double prev_cost = 0;
  for (int64_t sample : {1'000, 10'000, 100'000}) {
    CostModel::Config cfg;
    cfg.params = SystemParams::Paper32();
    cfg.sample_size = sample;
    CostModel model(cfg);
    double cost =
        model.Breakdown(AlgorithmKind::kSampling, 1e-4).sample_cost;
    EXPECT_GT(cost, prev_cost);
    prev_cost = cost;
  }
}

}  // namespace
}  // namespace adaptagg
