#include "model/cost_model.h"

#include <gtest/gtest.h>

namespace adaptagg {
namespace {

CostModel Paper32Model(NetworkKind net = NetworkKind::kHighBandwidth) {
  CostModel::Config cfg;
  cfg.params = SystemParams::Paper32();
  cfg.params.network = net;
  return CostModel(cfg);
}

TEST(ExpectedDistinct, Basics) {
  EXPECT_DOUBLE_EQ(ExpectedDistinct(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedDistinct(5, 1), 1.0);
  // One draw sees exactly one group.
  EXPECT_NEAR(ExpectedDistinct(1, 1000), 1.0, 1e-9);
  // Many draws saturate at the group count.
  EXPECT_NEAR(ExpectedDistinct(1e7, 100), 100.0, 1e-6);
  // Monotone in draws.
  EXPECT_LT(ExpectedDistinct(10, 1000), ExpectedDistinct(100, 1000));
}

TEST(CostModel, BreakdownComponentsNonNegative) {
  CostModel model = Paper32Model();
  for (AlgorithmKind kind : AllAlgorithms()) {
    for (double s : {1.25e-7, 1e-5, 1e-3, 0.1, 0.5}) {
      CostBreakdown b = model.Breakdown(kind, s);
      EXPECT_GE(b.scan_io, 0);
      EXPECT_GE(b.select_cpu, 0);
      EXPECT_GE(b.agg_cpu, 0);
      EXPECT_GE(b.overflow_io, 0);
      EXPECT_GE(b.net_protocol, 0);
      EXPECT_GE(b.net_wire, 0);
      EXPECT_GE(b.store_io, 0);
      EXPECT_GT(b.total(), 0) << AlgorithmKindToString(kind) << " " << s;
    }
  }
}

TEST(CostModel, ScanCostIsTheFloor) {
  // Every algorithm at least scans its partition: 25 MB / 4 KB pages at
  // 1.15 ms each ~ 7 s.
  CostModel model = Paper32Model();
  double scan = 25e6 / 4096 * 1.15e-3;
  for (AlgorithmKind kind : AllAlgorithms()) {
    EXPECT_GE(model.Time(kind, 1e-6), scan);
  }
}

TEST(CostModel, TwoPhaseBeatsRepartitioningAtLowSelectivity) {
  CostModel model = Paper32Model();
  double s = 1.25e-7;  // one group
  EXPECT_LT(model.Time(AlgorithmKind::kTwoPhase, s),
            model.Time(AlgorithmKind::kRepartitioning, s));
}

TEST(CostModel, RepartitioningBeatsTwoPhaseAtHighSelectivity) {
  CostModel model = Paper32Model();
  double s = 0.25;  // 2M groups on 8M tuples
  EXPECT_LT(model.Time(AlgorithmKind::kRepartitioning, s),
            model.Time(AlgorithmKind::kTwoPhase, s));
}

TEST(CostModel, CentralizedCoordinatorDominatesAtManyGroups) {
  CostModel model = Paper32Model();
  CostBreakdown low = model.Breakdown(AlgorithmKind::kCentralizedTwoPhase,
                                      1e-6);
  CostBreakdown high = model.Breakdown(AlgorithmKind::kCentralizedTwoPhase,
                                       0.1);
  EXPECT_GT(high.coord_time, 100 * low.coord_time);
  // And C-2P is strictly worse than parallel 2P once merging matters.
  EXPECT_GT(model.Time(AlgorithmKind::kCentralizedTwoPhase, 0.1),
            model.Time(AlgorithmKind::kTwoPhase, 0.1));
}

TEST(CostModel, TwoPhaseOverflowKicksInBeyondTableBound) {
  CostModel model = Paper32Model();
  // Local groups per node: min(S*8M, 250K). M = 10K.
  double s_fit = 10'000.0 / 8e6 / 2;   // well under M per node
  double s_over = 0.1;                 // 250K local groups >> M
  EXPECT_DOUBLE_EQ(
      model.Breakdown(AlgorithmKind::kTwoPhase, s_fit).overflow_io, 0);
  EXPECT_GT(model.Breakdown(AlgorithmKind::kTwoPhase, s_over).overflow_io,
            0);
}

TEST(CostModel, LimitedBandwidthPunishesRepartitioning) {
  CostModel high = Paper32Model(NetworkKind::kHighBandwidth);
  CostModel low = Paper32Model(NetworkKind::kLimitedBandwidth);
  double s = 1e-3;
  double rep_high = high.Time(AlgorithmKind::kRepartitioning, s);
  double rep_low = low.Time(AlgorithmKind::kRepartitioning, s);
  // Serializing the full relation over one shared medium is brutal.
  EXPECT_GT(rep_low, 3 * rep_high);
  // Two Phase ships only partials at this selectivity; much less hit.
  double tp_ratio = low.Time(AlgorithmKind::kTwoPhase, s) /
                    high.Time(AlgorithmKind::kTwoPhase, s);
  EXPECT_LT(tp_ratio, 2.0);
}

TEST(CostModel, PipelineConfigDropsScanAndStore) {
  CostModel::Config cfg;
  cfg.params = SystemParams::Paper32();
  cfg.include_scan_io = false;
  cfg.include_store_io = false;
  CostModel pipeline(cfg);
  CostModel full = Paper32Model();
  for (AlgorithmKind kind :
       {AlgorithmKind::kTwoPhase, AlgorithmKind::kRepartitioning}) {
    CostBreakdown b = pipeline.Breakdown(kind, 1e-4);
    EXPECT_DOUBLE_EQ(b.scan_io, 0);
    EXPECT_DOUBLE_EQ(b.store_io, 0);
    EXPECT_LT(b.total(), full.Time(kind, 1e-4));
  }
  // Overflow I/O is intermediate I/O and must survive pipeline mode.
  EXPECT_GT(pipeline.Breakdown(AlgorithmKind::kTwoPhase, 0.25).overflow_io,
            0);
}

TEST(CostModel, AdaptiveTwoPhaseMatchesTwoPhaseWhenTableFits) {
  CostModel model = Paper32Model();
  double s = 1e-6;  // 8 groups: never overflows
  double a2p = model.Time(AlgorithmKind::kAdaptiveTwoPhase, s);
  double tp = model.Time(AlgorithmKind::kTwoPhase, s);
  EXPECT_NEAR(a2p, tp, 0.05 * tp);
}

TEST(CostModel, AdaptiveRepartitioningMatchesRepWhenGroupsAreMany) {
  CostModel model = Paper32Model();
  double s = 0.25;
  EXPECT_DOUBLE_EQ(model.Time(AlgorithmKind::kAdaptiveRepartitioning, s),
                   model.Time(AlgorithmKind::kRepartitioning, s));
}

TEST(CostModel, SamplingAddsOverheadButPicksTheWinner) {
  CostModel model = Paper32Model();
  for (double s : {1e-6, 0.25}) {
    double samp = model.Time(AlgorithmKind::kSampling, s);
    double best = std::min(model.Time(AlgorithmKind::kTwoPhase, s),
                           model.Time(AlgorithmKind::kRepartitioning, s));
    double worst = std::max(model.Time(AlgorithmKind::kTwoPhase, s),
                            model.Time(AlgorithmKind::kRepartitioning, s));
    EXPECT_GT(samp, best);          // sampling is not free
    EXPECT_LT(samp, worst);         // but it avoids the wrong choice
    CostBreakdown b = model.Breakdown(AlgorithmKind::kSampling, s);
    EXPECT_GT(b.sample_cost, 0);
  }
}

TEST(CostModel, ResolvedDefaults) {
  CostModel model = Paper32Model();
  EXPECT_EQ(model.crossover_threshold(), 3'200);
  EXPECT_GT(model.sample_total(), 10'000);  // ~10x threshold
  EXPECT_EQ(model.few_groups_threshold(), 3'200);
  CostModel::Config cfg;
  cfg.params = SystemParams::Paper32();
  cfg.crossover_threshold = 50;
  cfg.sample_size = 600;
  cfg.few_groups_threshold = 10;
  CostModel custom(cfg);
  EXPECT_EQ(custom.crossover_threshold(), 50);
  EXPECT_EQ(custom.sample_total(), 600);
  EXPECT_EQ(custom.few_groups_threshold(), 10);
}

TEST(CostBreakdown, ToStringContainsTotal) {
  CostModel model = Paper32Model();
  CostBreakdown b = model.Breakdown(AlgorithmKind::kTwoPhase, 1e-4);
  EXPECT_NE(b.ToString().find("total="), std::string::npos);
}

}  // namespace
}  // namespace adaptagg
