#include "model/locality_model.h"

#include <gtest/gtest.h>

#include "model/cost_model.h"

namespace adaptagg {
namespace {

constexpr int64_t kSlot = 40;  // 8-byte key + 32-byte state

TEST(DecideRadixPartitioning, OffNeverEngages) {
  const RadixDecision d = DecideRadixPartitioning(
      RadixMode::kOff, /*est_groups=*/1'000'000, /*max_entries=*/10'000'000,
      kSlot, kDefaultL2Bytes, kDefaultLlcBytes);
  EXPECT_FALSE(d.engage);
}

TEST(DecideRadixPartitioning, AutoEngagesOnlyBeyondLlc) {
  // Small working set: hash-direct.
  EXPECT_FALSE(DecideRadixPartitioning(RadixMode::kAuto, 1'000, 10'000'000,
                                       kSlot, kDefaultL2Bytes,
                                       kDefaultLlcBytes)
                   .engage);
  // Working set past the LLC budget: engage.
  const RadixDecision big = DecideRadixPartitioning(
      RadixMode::kAuto, 1'000'000, 10'000'000, kSlot, kDefaultL2Bytes,
      kDefaultLlcBytes);
  EXPECT_TRUE(big.engage);
  EXPECT_GE(big.partitions, 2);
  EXPECT_GT(big.working_set_bytes, kDefaultLlcBytes);
}

TEST(DecideRadixPartitioning, AutoStaysOffWhileLlcResident) {
  // A working set past L2 but inside the LLC budget stays hash-direct:
  // the streaming loop's prefetches already hide LLC-resident probe
  // latency, so staging would be a pure tax (measured: 30-40% slower).
  const int64_t groups = 262'144;  // ~9.4 MB working set at kSlot+12
  const RadixDecision d = DecideRadixPartitioning(
      RadixMode::kAuto, groups, 10'000'000, /*slot_bytes=*/24,
      kDefaultL2Bytes, kDefaultLlcBytes);
  EXPECT_GT(d.working_set_bytes, kDefaultL2Bytes);
  EXPECT_FALSE(d.engage);
  // Shrinking the LLC budget below the working set flips it on.
  EXPECT_TRUE(DecideRadixPartitioning(RadixMode::kAuto, groups, 10'000'000,
                                      /*slot_bytes=*/24, kDefaultL2Bytes,
                                      /*llc_bytes=*/int64_t{4} << 20)
                  .engage);
}

TEST(DecideRadixPartitioning, AutoRespectsTableBound) {
  // Groups beyond max_entries will spill; staging must not engage (it
  // would reorder which keys win the limited slots).
  EXPECT_FALSE(DecideRadixPartitioning(RadixMode::kAuto, 1'000'000,
                                       /*max_entries=*/10'000, kSlot,
                                       kDefaultL2Bytes, kDefaultLlcBytes)
                   .engage);
}

TEST(DecideRadixPartitioning, AutoWithoutEstimateStaysOff) {
  EXPECT_FALSE(DecideRadixPartitioning(RadixMode::kAuto, 0, 10'000'000,
                                       kSlot, kDefaultL2Bytes, kDefaultLlcBytes)
                   .engage);
  EXPECT_FALSE(DecideRadixPartitioning(RadixMode::kAuto, -5, 10'000'000,
                                       kSlot, kDefaultL2Bytes, kDefaultLlcBytes)
                   .engage);
}

TEST(DecideRadixPartitioning, OnAlwaysEngages) {
  const RadixDecision d = DecideRadixPartitioning(
      RadixMode::kOn, /*est_groups=*/0, 10'000'000, kSlot, kDefaultL2Bytes, kDefaultLlcBytes);
  EXPECT_TRUE(d.engage);
  EXPECT_GE(d.partitions, 2);
}

TEST(DecideRadixPartitioning, PartitionCountTargetsHalfL2) {
  const int64_t l2 = kDefaultL2Bytes;
  const RadixDecision d = DecideRadixPartitioning(
      RadixMode::kAuto, 1'000'000, 10'000'000, kSlot, l2, kDefaultLlcBytes);
  ASSERT_TRUE(d.engage);
  // Power of two.
  EXPECT_EQ(d.partitions & (d.partitions - 1), 0);
  // Each partition's share of the working set fits half of L2 (the next
  // power of two can at most halve the share again, hence >= l2 / 4 on
  // the low side).
  const int64_t share = d.working_set_bytes / d.partitions;
  EXPECT_LE(share, l2 / 2);
  EXPECT_GE(share, l2 / 8);
}

TEST(DecideRadixPartitioning, PartitionCountIsClamped) {
  // Astronomically large working set: capped at 256 partitions.
  const RadixDecision d = DecideRadixPartitioning(
      RadixMode::kOn, 500'000'000, 1'000'000'000, kSlot, kDefaultL2Bytes, kDefaultLlcBytes);
  ASSERT_TRUE(d.engage);
  EXPECT_LE(d.partitions, 256);
  // Tiny L2 budget still yields at least 2.
  const RadixDecision tiny = DecideRadixPartitioning(
      RadixMode::kOn, 10, 1'000'000, kSlot, /*l2_bytes=*/1'000'000'000, kDefaultLlcBytes);
  ASSERT_TRUE(tiny.engage);
  EXPECT_GE(tiny.partitions, 2);
}

TEST(EstimateGroupsFromSample, EmptySampleIsZero) {
  EXPECT_EQ(EstimateGroupsFromSample(0, 0, 1'000'000), 0);
}

TEST(EstimateGroupsFromSample, AllDistinctSaturatesToPopulation) {
  EXPECT_EQ(EstimateGroupsFromSample(1'000, 1'000, 50'000), 50'000);
  // distinct > sampled is impossible input; it must still saturate
  // rather than search.
  EXPECT_EQ(EstimateGroupsFromSample(1'000, 2'000, 50'000), 50'000);
}

TEST(EstimateGroupsFromSample, InvertsExpectedDistinct) {
  // For a known G, drawing `sampled` tuples yields ExpectedDistinct
  // distinct keys on average; feeding that back must recover ~G.
  for (const int64_t g : {int64_t{100}, int64_t{5'000}, int64_t{100'000}}) {
    const int64_t sampled = 20'000;
    const int64_t population = 1'000'000;
    const int64_t distinct = static_cast<int64_t>(
        ExpectedDistinct(static_cast<double>(sampled),
                         static_cast<double>(g)));
    const int64_t est =
        EstimateGroupsFromSample(sampled, distinct, population);
    EXPECT_GE(est, g - g / 5) << g;
    EXPECT_LE(est, g + g / 5 + 2) << g;
  }
}

TEST(EstimateGroupsFromSample, MonotoneInDistinct) {
  const int64_t sampled = 10'000;
  const int64_t population = 500'000;
  int64_t prev = 0;
  for (int64_t distinct = 100; distinct < sampled; distinct += 1'000) {
    const int64_t est =
        EstimateGroupsFromSample(sampled, distinct, population);
    EXPECT_GE(est, prev) << distinct;
    prev = est;
  }
}

}  // namespace
}  // namespace adaptagg
