#include "agg/agg_function.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace adaptagg {
namespace {

std::vector<uint8_t> Init(const AggregateOp& op) {
  std::vector<uint8_t> state(static_cast<size_t>(op.state_width()));
  op.InitState(state.data());
  return state;
}

void UpdateI64(const AggregateOp& op, std::vector<uint8_t>& state,
               int64_t v) {
  op.UpdateRaw(state.data(), reinterpret_cast<const uint8_t*>(&v));
}

void UpdateF64(const AggregateOp& op, std::vector<uint8_t>& state,
               double v) {
  op.UpdateRaw(state.data(), reinterpret_cast<const uint8_t*>(&v));
}

TEST(AggregateOp, CountBasics) {
  AggregateOp op(AggKind::kCount, DataType::kInt64);
  EXPECT_EQ(op.state_width(), 8);
  EXPECT_EQ(op.output_type(), DataType::kInt64);
  auto state = Init(op);
  for (int i = 0; i < 5; ++i) op.UpdateRaw(state.data(), nullptr);
  EXPECT_EQ(op.Finalize(state.data()), Value(int64_t{5}));
}

TEST(AggregateOp, SumInt64) {
  AggregateOp op(AggKind::kSum, DataType::kInt64);
  auto state = Init(op);
  UpdateI64(op, state, 10);
  UpdateI64(op, state, -3);
  UpdateI64(op, state, 100);
  EXPECT_EQ(op.Finalize(state.data()), Value(int64_t{107}));
}

TEST(AggregateOp, SumDouble) {
  AggregateOp op(AggKind::kSum, DataType::kDouble);
  EXPECT_EQ(op.output_type(), DataType::kDouble);
  auto state = Init(op);
  UpdateF64(op, state, 0.5);
  UpdateF64(op, state, 1.25);
  EXPECT_DOUBLE_EQ(op.Finalize(state.data()).dbl(), 1.75);
}

TEST(AggregateOp, AvgInt64CarriesSumAndCount) {
  AggregateOp op(AggKind::kAvg, DataType::kInt64);
  EXPECT_EQ(op.state_width(), 16);
  EXPECT_EQ(op.output_type(), DataType::kDouble);
  auto state = Init(op);
  UpdateI64(op, state, 1);
  UpdateI64(op, state, 2);
  UpdateI64(op, state, 6);
  EXPECT_DOUBLE_EQ(op.Finalize(state.data()).dbl(), 3.0);
}

TEST(AggregateOp, AvgDouble) {
  AggregateOp op(AggKind::kAvg, DataType::kDouble);
  auto state = Init(op);
  UpdateF64(op, state, 1.0);
  UpdateF64(op, state, 2.0);
  EXPECT_DOUBLE_EQ(op.Finalize(state.data()).dbl(), 1.5);
}

TEST(AggregateOp, MinMaxInt64) {
  AggregateOp mn(AggKind::kMin, DataType::kInt64);
  AggregateOp mx(AggKind::kMax, DataType::kInt64);
  auto smin = Init(mn);
  auto smax = Init(mx);
  for (int64_t v : {5LL, -2LL, 8LL, 0LL}) {
    UpdateI64(mn, smin, v);
    UpdateI64(mx, smax, v);
  }
  EXPECT_EQ(mn.Finalize(smin.data()), Value(int64_t{-2}));
  EXPECT_EQ(mx.Finalize(smax.data()), Value(int64_t{8}));
}

TEST(AggregateOp, MinMaxDouble) {
  AggregateOp mn(AggKind::kMin, DataType::kDouble);
  AggregateOp mx(AggKind::kMax, DataType::kDouble);
  auto smin = Init(mn);
  auto smax = Init(mx);
  for (double v : {0.5, -1.5, 3.25}) {
    UpdateF64(mn, smin, v);
    UpdateF64(mx, smax, v);
  }
  EXPECT_DOUBLE_EQ(mn.Finalize(smin.data()).dbl(), -1.5);
  EXPECT_DOUBLE_EQ(mx.Finalize(smax.data()).dbl(), 3.25);
}

// The decomposability property that two-phase aggregation rests on:
// splitting a stream arbitrarily and merging partials must equal the
// single-pass result.
class MergeEquivalence
    : public ::testing::TestWithParam<std::tuple<AggKind, DataType>> {};

TEST_P(MergeEquivalence, SplitStreamEqualsSinglePass) {
  auto [kind, type] = GetParam();
  AggregateOp op(kind, type);

  std::vector<int64_t> values = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, -7, 0};
  for (size_t split = 0; split <= values.size(); ++split) {
    auto whole = Init(op);
    auto left = Init(op);
    auto right = Init(op);
    for (size_t i = 0; i < values.size(); ++i) {
      auto& part = i < split ? left : right;
      if (type == DataType::kInt64) {
        UpdateI64(op, whole, values[i]);
        UpdateI64(op, part, values[i]);
      } else {
        UpdateF64(op, whole, static_cast<double>(values[i]));
        UpdateF64(op, part, static_cast<double>(values[i]));
      }
    }
    op.MergePartial(left.data(), right.data());
    EXPECT_EQ(op.Finalize(left.data()), op.Finalize(whole.data()))
        << "split at " << split;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MergeEquivalence,
    ::testing::Combine(::testing::Values(AggKind::kCount, AggKind::kSum,
                                         AggKind::kAvg, AggKind::kMin,
                                         AggKind::kMax),
                       ::testing::Values(DataType::kInt64,
                                         DataType::kDouble)),
    [](const ::testing::TestParamInfo<std::tuple<AggKind, DataType>>& info) {
      return AggKindToString(std::get<0>(info.param)) + "_" +
             DataTypeToString(std::get<1>(info.param));
    });

TEST(AggregateOp, MergeWithEmptyPartialIsIdentity) {
  for (AggKind kind : {AggKind::kCount, AggKind::kSum, AggKind::kAvg,
                       AggKind::kMin, AggKind::kMax}) {
    AggregateOp op(kind, DataType::kInt64);
    auto state = Init(op);
    UpdateI64(op, state, 42);
    auto empty = Init(op);
    Value before = op.Finalize(state.data());
    op.MergePartial(state.data(), empty.data());
    EXPECT_EQ(op.Finalize(state.data()), before)
        << AggKindToString(kind);
  }
}

TEST(AggregateOp, FinalizeToWritesWireBytes) {
  AggregateOp op(AggKind::kSum, DataType::kInt64);
  auto state = Init(op);
  UpdateI64(op, state, 11);
  uint8_t out[8];
  op.FinalizeTo(state.data(), out);
  int64_t v;
  std::memcpy(&v, out, 8);
  EXPECT_EQ(v, 11);
}

TEST(AggKind, Names) {
  EXPECT_EQ(AggKindToString(AggKind::kCount), "count");
  EXPECT_EQ(AggKindToString(AggKind::kAvg), "avg");
}

}  // namespace
}  // namespace adaptagg
