// Differential tests for the batched aggregation kernels: every batch
// entry point must be bit-identical to the tuple-at-a-time path it
// replaced — same hashes, same projected bytes, same table contents,
// and the same exact stopping tuple when the table fills mid-batch.

#include "agg/batch_kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "agg/hash_table.h"
#include "agg/reference.h"
#include "common/random.h"
#include "test_util.h"
#include "workload/generator.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

/// One randomized-differential configuration: a schema plus a query over
/// it. The matrix covers all five AggKinds, both numeric input types,
/// multi-column and odd-width keys, and DISTINCT (zero aggregates).
struct SpecCase {
  std::string name;
  Schema schema;
  std::vector<int> group_cols;
  std::vector<AggDescriptor> aggs;
  FusedKernelKind want_kernel = FusedKernelKind::kGeneric;
  FusedMergeKind want_merge = FusedMergeKind::kGeneric;
};

std::vector<SpecCase> AllSpecCases() {
  std::vector<SpecCase> cases;
  // Canonical COUNT(*), SUM(int64) GROUP BY int64: the fused kernel.
  cases.push_back(
      {"count_sum_int64",
       Schema({{"g", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}}),
       {0},
       {{AggKind::kCount, -1, "c"}, {AggKind::kSum, 1, "s"}},
       FusedKernelKind::kCountSumInt64, FusedMergeKind::kAddInt64});
  // Two-int64 key (16B word fast path), double inputs, SUM + AVG.
  cases.push_back(
      {"sum_avg_double_2key",
       Schema({{"a", DataType::kInt64, 8},
               {"b", DataType::kInt64, 8},
               {"x", DataType::kDouble, 8}}),
       {0, 1},
       {{AggKind::kSum, 2, "s"}, {AggKind::kAvg, 2, "a"}}});
  // Odd-width bytes key (no word fast path), MIN(int64) + MAX(double).
  cases.push_back(
      {"min_max_bytes5_key",
       Schema({{"k", DataType::kBytes, 5},
               {"v", DataType::kInt64, 8},
               {"d", DataType::kDouble, 8}}),
       {0},
       {{AggKind::kMin, 1, "lo"}, {AggKind::kMax, 2, "hi"}}});
  // Mixed 11-byte key, AVG(double) + COUNT + MAX(int64).
  cases.push_back(
      {"avg_count_max_mixed_key",
       Schema({{"g", DataType::kInt64, 8},
               {"t", DataType::kBytes, 3},
               {"x", DataType::kDouble, 8},
               {"v", DataType::kInt64, 8}}),
       {0, 1},
       {{AggKind::kAvg, 2, "a"},
        {AggKind::kCount, -1, "c"},
        {AggKind::kMax, 3, "m"}}});
  // DISTINCT over (int64, double): zero aggregates, fused probe-only.
  cases.push_back(
      {"distinct_2col",
       Schema({{"g", DataType::kInt64, 8}, {"d", DataType::kDouble, 8}}),
       {0, 1},
       {},
       FusedKernelKind::kDistinct, FusedMergeKind::kDistinct});
  // MIN(double) alone on a double key: remaining kind/type combination.
  cases.push_back({"min_double_double_key",
                   Schema({{"k", DataType::kDouble, 8},
                           {"d", DataType::kDouble, 8}}),
                   {0},
                   {{AggKind::kMin, 1, "lo"}}});
  // MIN+MAX over int64: generic raw update, fused compare-merge.
  cases.push_back(
      {"min_max_int64",
       Schema({{"g", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}}),
       {0},
       {{AggKind::kMin, 1, "lo"}, {AggKind::kMax, 1, "hi"}},
       FusedKernelKind::kGeneric, FusedMergeKind::kMinMaxInt64});
  // COUNT + AVG(int64): every state word merges by addition.
  cases.push_back(
      {"count_avg_int64",
       Schema({{"g", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}}),
       {0},
       {{AggKind::kCount, -1, "c"}, {AggKind::kAvg, 1, "a"}},
       FusedKernelKind::kGeneric, FusedMergeKind::kAddInt64});
  return cases;
}

/// Deterministic pseudo-random tuples with a small per-column domain so
/// group keys collide often (the update paths get exercised, not just
/// inserts).
std::vector<uint8_t> MakeTuples(const Schema& schema, int n, uint64_t seed,
                                uint64_t domain) {
  Prng prng(seed);
  std::vector<uint8_t> raw(static_cast<size_t>(n) * schema.tuple_size());
  for (int i = 0; i < n; ++i) {
    uint8_t* rec = raw.data() + static_cast<size_t>(i) * schema.tuple_size();
    for (int f = 0; f < schema.num_fields(); ++f) {
      uint8_t* dst = rec + schema.offset(f);
      switch (schema.field(f).type) {
        case DataType::kInt64: {
          int64_t v = static_cast<int64_t>(prng.NextBelow(domain)) - 3;
          std::memcpy(dst, &v, 8);
          break;
        }
        case DataType::kDouble: {
          double d =
              static_cast<double>(static_cast<int64_t>(prng.NextBelow(domain)) -
                                  3);
          std::memcpy(dst, &d, 8);
          break;
        }
        case DataType::kBytes: {
          for (int b = 0; b < schema.field(f).width; ++b) {
            dst[b] = static_cast<uint8_t>('a' + prng.NextBelow(3));
          }
          break;
        }
      }
    }
  }
  return raw;
}

/// The pre-batch per-tuple path: project, hash, upsert one at a time.
void ScalarUpsertAll(const AggregationSpec& spec, const Schema& schema,
                     const std::vector<uint8_t>& raw, int n,
                     AggHashTable& table) {
  std::vector<uint8_t> proj(
      static_cast<size_t>(std::max(1, spec.projected_width())));
  for (int i = 0; i < n; ++i) {
    TupleView t(raw.data() + static_cast<size_t>(i) * schema.tuple_size(),
                &schema);
    spec.ProjectRaw(t, proj.data());
    AggHashTable::UpsertResult r =
        table.UpsertProjected(proj.data(), spec.HashKey(proj.data()));
    ASSERT_NE(r, AggHashTable::UpsertResult::kFull);
  }
}

/// The batched path: gather page-sized batches, hash, batch upsert.
void BatchUpsertAll(const AggregationSpec& spec, const Schema& schema,
                    const std::vector<uint8_t>& raw, int n,
                    AggHashTable& table) {
  TupleBatch batch(&spec);
  int i = 0;
  while (i < n) {
    batch.Clear();
    while (!batch.full() && i < n) {
      TupleView t(raw.data() + static_cast<size_t>(i) * schema.tuple_size(),
                  &schema);
      batch.Gather(t);
      ++i;
    }
    batch.ComputeHashes();
    ASSERT_EQ(table.UpsertProjectedBatch(batch, 0), batch.size());
  }
}

/// Every (key, state) of `a` must exist in `b` with bit-identical state
/// bytes, and the sizes must match (=> the tables are equal as sets).
void ExpectTablesEqual(const AggregationSpec& spec, const AggHashTable& a,
                       const AggHashTable& b) {
  ASSERT_EQ(a.size(), b.size());
  a.ForEach([&](const uint8_t* key, const uint8_t* state) {
    const uint8_t* other = b.Find(key, spec.HashKey(key));
    ASSERT_NE(other, nullptr) << "key missing from batch table";
    EXPECT_EQ(std::memcmp(state, other,
                          static_cast<size_t>(spec.state_width())),
              0)
        << "state bytes differ";
  });
}

TEST(BatchKernels, BatchMatchesScalarAcrossSpecMatrix) {
  for (const SpecCase& c : AllSpecCases()) {
    SCOPED_TRACE(c.name);
    ASSERT_OK_AND_ASSIGN(
        AggregationSpec spec,
        AggregationSpec::Make(&c.schema, c.group_cols, c.aggs));
    EXPECT_EQ(spec.fused_kernel(), c.want_kernel);
    for (uint64_t seed : {1u, 7u, 1234u}) {
      SCOPED_TRACE("seed=" + std::to_string(seed));
      const int n = 4096;
      std::vector<uint8_t> raw = MakeTuples(c.schema, n, seed, 29);
      AggHashTable scalar(&spec, /*max_entries=*/1 << 20);
      ScalarUpsertAll(spec, c.schema, raw, n, scalar);
      AggHashTable batched(&spec, /*max_entries=*/1 << 20);
      BatchUpsertAll(spec, c.schema, raw, n, batched);
      ExpectTablesEqual(spec, scalar, batched);
    }
  }
}

TEST(BatchKernels, HashKeysMatchesScalarHashKey) {
  for (const SpecCase& c : AllSpecCases()) {
    SCOPED_TRACE(c.name);
    ASSERT_OK_AND_ASSIGN(
        AggregationSpec spec,
        AggregationSpec::Make(&c.schema, c.group_cols, c.aggs));
    const int n = 300;  // deliberately not a batch multiple
    std::vector<uint8_t> raw = MakeTuples(c.schema, n, 99, 1000);
    std::vector<uint8_t> proj(
        static_cast<size_t>(std::max(1, spec.projected_width())) * n);
    const int stride = std::max(1, spec.projected_width());
    for (int i = 0; i < n; ++i) {
      TupleView t(raw.data() + static_cast<size_t>(i) * c.schema.tuple_size(),
                  &c.schema);
      spec.ProjectRaw(t, proj.data() + static_cast<size_t>(i) * stride);
    }
    std::vector<uint64_t> got(n);
    spec.HashKeys(proj.data(), stride, n, got.data());
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(got[i],
                spec.HashKey(proj.data() + static_cast<size_t>(i) * stride))
          << "record " << i;
    }
  }
}

TEST(BatchKernels, GatherRunMatchesPerTupleGather) {
  for (const SpecCase& c : AllSpecCases()) {
    SCOPED_TRACE(c.name);
    ASSERT_OK_AND_ASSIGN(
        AggregationSpec spec,
        AggregationSpec::Make(&c.schema, c.group_cols, c.aggs));
    const int n = 100;
    std::vector<uint8_t> raw = MakeTuples(c.schema, n, 5, 50);
    TupleBatch one(&spec);
    for (int i = 0; i < n; ++i) {
      TupleView t(raw.data() + static_cast<size_t>(i) * c.schema.tuple_size(),
                  &c.schema);
      one.Gather(t);
    }
    TupleBatch run(&spec);
    // Split into two runs to exercise the append-at-offset path.
    ASSERT_EQ(run.GatherRun(raw.data(), c.schema.tuple_size(), 37), 37);
    ASSERT_EQ(run.GatherRun(raw.data() + 37 * c.schema.tuple_size(),
                            c.schema.tuple_size(), n - 37),
              n - 37);
    ASSERT_EQ(one.size(), run.size());
    EXPECT_EQ(std::memcmp(one.records(), run.records(),
                          static_cast<size_t>(n) * one.stride()),
              0);
  }
}

TEST(BatchKernels, GatherRunStopsAtBatchCapacity) {
  Schema schema({{"g", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}});
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeCountSumSpec(&schema, 0, 1));
  std::vector<uint8_t> raw =
      MakeTuples(schema, kBatchWidth + 50, 11, 1000);
  TupleBatch batch(&spec);
  EXPECT_EQ(batch.GatherRun(raw.data(), schema.tuple_size(),
                            kBatchWidth + 50),
            kBatchWidth);
  EXPECT_TRUE(batch.full());
  EXPECT_EQ(batch.GatherRun(raw.data(), schema.tuple_size(), 1), 0);
}

// The kFull contract: the batch upsert must stop at exactly the tuple
// where the tuple-at-a-time loop saw kFull, leave that record entirely
// unprocessed, and leave the table bit-identical — this is what makes
// switch_at_tuple identical between the scalar and batched pipelines.
TEST(BatchKernels, StopAtFullMatchesScalarStopPoint) {
  Schema schema({{"g", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}});
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeCountSumSpec(&schema, 0, 1));
  const int n = 2 * kBatchWidth;
  for (uint64_t seed : {3u, 4u, 5u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::vector<uint8_t> raw = MakeTuples(schema, n, seed, 400);
    const int64_t m = 40;  // overflows mid-batch

    // Tuple-at-a-time: find the exact stopping tuple.
    AggHashTable scalar(&spec, m);
    std::vector<uint8_t> proj(static_cast<size_t>(spec.projected_width()));
    int scalar_stop = -1;
    for (int i = 0; i < n; ++i) {
      TupleView t(raw.data() + static_cast<size_t>(i) * schema.tuple_size(),
                  &schema);
      spec.ProjectRaw(t, proj.data());
      if (scalar.UpsertProjected(proj.data(), spec.HashKey(proj.data())) ==
          AggHashTable::UpsertResult::kFull) {
        scalar_stop = i;
        break;
      }
    }
    ASSERT_GE(scalar_stop, 0) << "test wants a mid-stream overflow";

    // Batched: consumed count must equal the scalar stop index.
    AggHashTable batched(&spec, m);
    TupleBatch batch(&spec);
    int consumed_total = 0;
    bool stopped = false;
    int i = 0;
    while (i < n && !stopped) {
      batch.Clear();
      while (!batch.full() && i < n) {
        TupleView t(
            raw.data() + static_cast<size_t>(i) * schema.tuple_size(),
            &schema);
        batch.Gather(t);
        ++i;
      }
      batch.ComputeHashes();
      int consumed = batched.UpsertProjectedBatch(batch, 0);
      consumed_total += consumed;
      stopped = consumed < batch.size();
    }
    EXPECT_TRUE(stopped);
    EXPECT_EQ(consumed_total, scalar_stop);
    ExpectTablesEqual(spec, scalar, batched);
    EXPECT_EQ(batched.size(), m) << "table must be exactly at capacity";
  }
}

// The overflow-collecting variant must report exactly the records the
// scalar loop saw kFull for, in order, while still updating hits.
TEST(BatchKernels, OverflowCollectMatchesScalar) {
  Schema schema({{"g", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}});
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeCountSumSpec(&schema, 0, 1));
  const int n = kBatchWidth;
  std::vector<uint8_t> raw = MakeTuples(schema, n, 21, 300);
  const int64_t m = 30;

  AggHashTable scalar(&spec, m);
  std::vector<uint8_t> proj(static_cast<size_t>(spec.projected_width()));
  std::vector<int> scalar_overflow;
  for (int i = 0; i < n; ++i) {
    TupleView t(raw.data() + static_cast<size_t>(i) * schema.tuple_size(),
                &schema);
    spec.ProjectRaw(t, proj.data());
    if (scalar.UpsertProjected(proj.data(), spec.HashKey(proj.data())) ==
        AggHashTable::UpsertResult::kFull) {
      scalar_overflow.push_back(i);
    }
  }
  ASSERT_FALSE(scalar_overflow.empty());

  AggHashTable batched(&spec, m);
  TupleBatch batch(&spec);
  for (int i = 0; i < n; ++i) {
    TupleView t(raw.data() + static_cast<size_t>(i) * schema.tuple_size(),
                &schema);
    batch.Gather(t);
  }
  batch.ComputeHashes();
  std::vector<int> batch_overflow;
  batched.UpsertProjectedBatchOverflow(batch, 0, batch_overflow);
  EXPECT_EQ(batch_overflow, scalar_overflow);
  ExpectTablesEqual(spec, scalar, batched);
}

/// Builds one single-tuple partial record per raw tuple: [key][state],
/// with the state initialized and updated from the projected tuple.
/// Every 7th record keeps a bare initialized state (no update) so
/// MIN/MAX "seen" flags stay 0 — the empty-state merge path the fused
/// compare-merge kernel must skip exactly like MergeState does.
std::vector<uint8_t> MakePartials(const AggregationSpec& spec,
                                  const Schema& schema,
                                  const std::vector<uint8_t>& raw, int n) {
  const size_t pw = static_cast<size_t>(spec.partial_width());
  std::vector<uint8_t> proj(
      static_cast<size_t>(std::max(1, spec.projected_width())));
  std::vector<uint8_t> partials(static_cast<size_t>(n) * pw);
  for (int i = 0; i < n; ++i) {
    TupleView t(raw.data() + static_cast<size_t>(i) * schema.tuple_size(),
                &schema);
    spec.ProjectRaw(t, proj.data());
    uint8_t* rec = partials.data() + static_cast<size_t>(i) * pw;
    std::memcpy(rec, spec.KeyOfProjected(proj.data()),
                static_cast<size_t>(spec.key_width()));
    spec.InitState(rec + spec.key_width());
    if (i % 7 != 6) {
      spec.UpdateFromProjected(rec + spec.key_width(), proj.data());
    }
  }
  return partials;
}

// The merge-side differential: upserting partial records through
// UpsertPartialBatch (BindView'd wire runs, fused merge kernels) must
// leave a table bit-identical to the per-record UpsertPartial loop, for
// every merge-kernel kind in the matrix.
TEST(BatchKernels, PartialMergeBatchMatchesScalarAcrossSpecMatrix) {
  for (const SpecCase& c : AllSpecCases()) {
    SCOPED_TRACE(c.name);
    ASSERT_OK_AND_ASSIGN(
        AggregationSpec spec,
        AggregationSpec::Make(&c.schema, c.group_cols, c.aggs));
    EXPECT_EQ(spec.fused_merge_kernel(), c.want_merge);
    for (uint64_t seed : {2u, 9u, 4321u}) {
      SCOPED_TRACE("seed=" + std::to_string(seed));
      const int n = 4096;
      std::vector<uint8_t> raw = MakeTuples(c.schema, n, seed, 29);
      std::vector<uint8_t> partials = MakePartials(spec, c.schema, raw, n);
      const int pw = spec.partial_width();

      AggHashTable scalar(&spec, /*max_entries=*/1 << 20);
      for (int i = 0; i < n; ++i) {
        const uint8_t* rec =
            partials.data() + static_cast<size_t>(i) * pw;
        ASSERT_NE(scalar.UpsertPartial(rec, spec.HashKey(rec)),
                  AggHashTable::UpsertResult::kFull);
      }

      AggHashTable batched(&spec, /*max_entries=*/1 << 20);
      TupleBatch batch(&spec);
      for (int off = 0; off < n; off += kBatchWidth) {
        const int run = std::min(n - off, kBatchWidth);
        batch.BindView(partials.data() + static_cast<size_t>(off) * pw, pw,
                       run);
        batch.ComputeHashes();
        ASSERT_EQ(batched.UpsertPartialBatch(batch, 0), run);
      }
      batch.Clear();
      ExpectTablesEqual(spec, scalar, batched);
    }
  }
}

// Partial-record twin of StopAtFullMatchesScalarStopPoint: the batched
// merge must stop at exactly the partial record where the per-record
// loop saw kFull.
TEST(BatchKernels, PartialMergeStopAtFullMatchesScalarStopPoint) {
  Schema schema({{"g", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}});
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeCountSumSpec(&schema, 0, 1));
  const int n = 2 * kBatchWidth;
  const int pw = spec.partial_width();
  for (uint64_t seed : {3u, 4u, 5u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::vector<uint8_t> raw = MakeTuples(schema, n, seed, 400);
    std::vector<uint8_t> partials = MakePartials(spec, schema, raw, n);
    const int64_t m = 40;  // overflows mid-batch

    AggHashTable scalar(&spec, m);
    int scalar_stop = -1;
    for (int i = 0; i < n; ++i) {
      const uint8_t* rec = partials.data() + static_cast<size_t>(i) * pw;
      if (scalar.UpsertPartial(rec, spec.HashKey(rec)) ==
          AggHashTable::UpsertResult::kFull) {
        scalar_stop = i;
        break;
      }
    }
    ASSERT_GE(scalar_stop, 0) << "test wants a mid-stream overflow";

    AggHashTable batched(&spec, m);
    TupleBatch batch(&spec);
    int consumed_total = 0;
    bool stopped = false;
    for (int off = 0; off < n && !stopped; off += kBatchWidth) {
      const int run = std::min(n - off, kBatchWidth);
      batch.BindView(partials.data() + static_cast<size_t>(off) * pw, pw,
                     run);
      batch.ComputeHashes();
      const int consumed = batched.UpsertPartialBatch(batch, 0);
      consumed_total += consumed;
      stopped = consumed < run;
    }
    batch.Clear();
    EXPECT_TRUE(stopped);
    EXPECT_EQ(consumed_total, scalar_stop);
    ExpectTablesEqual(spec, scalar, batched);
    EXPECT_EQ(batched.size(), m) << "table must be exactly at capacity";
  }
}

// Partial-record twin of OverflowCollectMatchesScalar: the spill path's
// merge must report exactly the records the per-record loop overflowed.
TEST(BatchKernels, PartialMergeOverflowCollectMatchesScalar) {
  Schema schema({{"g", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}});
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeCountSumSpec(&schema, 0, 1));
  const int n = kBatchWidth;
  const int pw = spec.partial_width();
  std::vector<uint8_t> raw = MakeTuples(schema, n, 21, 300);
  std::vector<uint8_t> partials = MakePartials(spec, schema, raw, n);
  const int64_t m = 30;

  AggHashTable scalar(&spec, m);
  std::vector<int> scalar_overflow;
  for (int i = 0; i < n; ++i) {
    const uint8_t* rec = partials.data() + static_cast<size_t>(i) * pw;
    if (scalar.UpsertPartial(rec, spec.HashKey(rec)) ==
        AggHashTable::UpsertResult::kFull) {
      scalar_overflow.push_back(i);
    }
  }
  ASSERT_FALSE(scalar_overflow.empty());

  AggHashTable batched(&spec, m);
  TupleBatch batch(&spec);
  batch.BindView(partials.data(), pw, n);
  batch.ComputeHashes();
  std::vector<int> batch_overflow;
  batched.UpsertPartialBatchOverflow(batch, 0, batch_overflow);
  batch.Clear();
  EXPECT_EQ(batch_overflow, scalar_overflow);
  ExpectTablesEqual(spec, scalar, batched);
}

// PR bugfix regression: MemoryBytes must report the actually allocated
// arena, growing as the table grows past the constructor's initial
// reservation instead of staying pinned to it.
TEST(BatchKernels, MemoryBytesTracksArenaGrowth) {
  Schema schema({{"g", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}});
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeCountSumSpec(&schema, 0, 1));
  const int64_t m = 200'000;  // beyond the 65536-slot initial arena
  AggHashTable table(&spec, m);
  const int64_t initial = table.MemoryBytes();
  const int slot = spec.key_width() + spec.state_width();
  EXPECT_GE(initial, 65536 * slot);

  std::vector<uint8_t> proj(static_cast<size_t>(spec.projected_width()));
  int64_t v = 1;
  std::memcpy(proj.data() + 8, &v, 8);
  for (int64_t g = 0; g < 100'000; ++g) {
    std::memcpy(proj.data(), &g, 8);
    ASSERT_NE(table.UpsertProjected(proj.data(), spec.HashKey(proj.data())),
              AggHashTable::UpsertResult::kFull);
  }
  // 100K live slots can only fit in >= 100K allocated slots; the old
  // accounting would still have reported the 65536-slot reservation.
  EXPECT_GE(table.MemoryBytes(), 100'000 * slot);
  EXPECT_GT(table.MemoryBytes(), initial);
}

// End-to-end randomized differential: every algorithm over a randomized
// workload must match the single-threaded reference oracle now that all
// six scan loops run batched.
TEST(BatchKernels, AllAlgorithmsMatchReferenceOnRandomizedWorkloads) {
  const AlgorithmKind kinds[] = {
      AlgorithmKind::kCentralizedTwoPhase, AlgorithmKind::kTwoPhase,
      AlgorithmKind::kRepartitioning,      AlgorithmKind::kSampling,
      AlgorithmKind::kAdaptiveTwoPhase,
      AlgorithmKind::kAdaptiveRepartitioning,
      AlgorithmKind::kGraefeTwoPhase,      AlgorithmKind::kSortTwoPhase,
  };
  struct Workload {
    int nodes;
    int64_t tuples;
    int64_t groups;
    int64_t m;  // small tables force overflow / adaptive switches
  };
  const Workload workloads[] = {
      {3, 6'000, 8, 64},       // few groups: 2P side wins
      {3, 6'000, 3'000, 128},  // many groups: overflow + switches
      {1, 3'000, 500, 64},     // single node, heavy spill
  };
  for (const Workload& w : workloads) {
    WorkloadSpec wspec;
    wspec.num_nodes = w.nodes;
    wspec.num_tuples = w.tuples;
    wspec.num_groups = w.groups;
    wspec.seed = 77 + static_cast<uint64_t>(w.groups);
    ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
    ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                         MakeBenchQuery(&rel.schema()));
    for (AlgorithmKind kind : kinds) {
      SCOPED_TRACE(AlgorithmKindToString(kind) + " groups=" +
                   std::to_string(w.groups));
      testing_util::ExpectMatchesReference(
          kind, SmallClusterParams(w.nodes, w.tuples, w.m), spec, rel);
    }
  }
}

}  // namespace
}  // namespace adaptagg
