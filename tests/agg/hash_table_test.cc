#include "agg/hash_table.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>

namespace adaptagg {
namespace {

class HashTableTest : public ::testing::Test {
 protected:
  HashTableTest() : schema_(MakeSchema()) {
    auto spec = MakeCountSumSpec(&schema_, 0, 1);
    EXPECT_TRUE(spec.ok());
    spec_ = std::make_unique<AggregationSpec>(std::move(spec).value());
  }

  static Schema MakeSchema() {
    return Schema({{"g", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}});
  }

  // Builds a projected record (g, v).
  std::vector<uint8_t> Proj(int64_t g, int64_t v) {
    std::vector<uint8_t> p(16);
    std::memcpy(p.data(), &g, 8);
    std::memcpy(p.data() + 8, &v, 8);
    return p;
  }

  uint64_t Hash(int64_t g) {
    return spec_->HashKey(reinterpret_cast<uint8_t*>(&g));
  }

  Schema schema_;
  std::unique_ptr<AggregationSpec> spec_;
};

TEST_F(HashTableTest, InsertThenUpdate) {
  AggHashTable table(spec_.get(), 100);
  auto p = Proj(7, 3);
  EXPECT_EQ(table.UpsertProjected(p.data(), Hash(7)),
            AggHashTable::UpsertResult::kInserted);
  EXPECT_EQ(table.size(), 1);
  p = Proj(7, 4);
  EXPECT_EQ(table.UpsertProjected(p.data(), Hash(7)),
            AggHashTable::UpsertResult::kUpdated);
  EXPECT_EQ(table.size(), 1);

  const uint8_t* state = table.Find(reinterpret_cast<const uint8_t*>(&p[0]),
                                    Hash(7));
  ASSERT_NE(state, nullptr);
  int64_t count, sum;
  std::memcpy(&count, state, 8);
  std::memcpy(&sum, state + 8, 8);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sum, 7);
}

TEST_F(HashTableTest, RefusesBeyondMaxEntries) {
  AggHashTable table(spec_.get(), 4);
  for (int64_t g = 0; g < 4; ++g) {
    auto p = Proj(g, 1);
    EXPECT_EQ(table.UpsertProjected(p.data(), Hash(g)),
              AggHashTable::UpsertResult::kInserted);
  }
  EXPECT_TRUE(table.full());
  auto p = Proj(99, 1);
  EXPECT_EQ(table.UpsertProjected(p.data(), Hash(99)),
            AggHashTable::UpsertResult::kFull);
  EXPECT_EQ(table.size(), 4);
  // Existing groups still update while full.
  p = Proj(2, 5);
  EXPECT_EQ(table.UpsertProjected(p.data(), Hash(2)),
            AggHashTable::UpsertResult::kUpdated);
}

TEST_F(HashTableTest, FindMissReturnsNull) {
  AggHashTable table(spec_.get(), 8);
  int64_t g = 123;
  EXPECT_EQ(table.Find(reinterpret_cast<uint8_t*>(&g), Hash(g)), nullptr);
}

TEST_F(HashTableTest, ForEachVisitsAllOnce) {
  AggHashTable table(spec_.get(), 1000);
  for (int64_t g = 0; g < 500; ++g) {
    auto p = Proj(g, g);
    table.UpsertProjected(p.data(), Hash(g));
  }
  std::map<int64_t, int> seen;
  table.ForEach([&](const uint8_t* key, const uint8_t* state) {
    int64_t g;
    std::memcpy(&g, key, 8);
    ++seen[g];
    int64_t count;
    std::memcpy(&count, state, 8);
    EXPECT_EQ(count, 1);
  });
  EXPECT_EQ(seen.size(), 500u);
  for (const auto& [g, n] : seen) {
    EXPECT_EQ(n, 1) << g;
  }
}

TEST_F(HashTableTest, ClearEmptiesButKeepsCapacity) {
  AggHashTable table(spec_.get(), 16);
  for (int64_t g = 0; g < 16; ++g) {
    auto p = Proj(g, 1);
    table.UpsertProjected(p.data(), Hash(g));
  }
  EXPECT_TRUE(table.full());
  table.Clear();
  EXPECT_EQ(table.size(), 0);
  EXPECT_FALSE(table.full());
  // Reusable after clear, and old keys are gone.
  auto p = Proj(3, 9);
  EXPECT_EQ(table.UpsertProjected(p.data(), Hash(3)),
            AggHashTable::UpsertResult::kInserted);
}

TEST_F(HashTableTest, ManyGroupsProbeCorrectly) {
  // Enough keys to force probe chains; verify exact counts per group.
  AggHashTable table(spec_.get(), 10'000);
  for (int round = 0; round < 3; ++round) {
    for (int64_t g = 0; g < 5'000; ++g) {
      auto p = Proj(g, 1);
      auto r = table.UpsertProjected(p.data(), Hash(g));
      ASSERT_NE(r, AggHashTable::UpsertResult::kFull);
    }
  }
  EXPECT_EQ(table.size(), 5'000);
  table.ForEach([&](const uint8_t*, const uint8_t* state) {
    int64_t count;
    std::memcpy(&count, state, 8);
    EXPECT_EQ(count, 3);
  });
}

TEST_F(HashTableTest, PartialUpsertMerges) {
  AggHashTable table(spec_.get(), 8);
  // Partial record: key + (count, sum).
  std::vector<uint8_t> partial(24);
  int64_t g = 5, count = 3, sum = 30;
  std::memcpy(partial.data(), &g, 8);
  std::memcpy(partial.data() + 8, &count, 8);
  std::memcpy(partial.data() + 16, &sum, 8);
  EXPECT_EQ(table.UpsertPartial(partial.data(), Hash(5)),
            AggHashTable::UpsertResult::kInserted);
  EXPECT_EQ(table.UpsertPartial(partial.data(), Hash(5)),
            AggHashTable::UpsertResult::kUpdated);
  const uint8_t* state =
      table.Find(reinterpret_cast<uint8_t*>(&g), Hash(5));
  ASSERT_NE(state, nullptr);
  int64_t c, s;
  std::memcpy(&c, state, 8);
  std::memcpy(&s, state + 8, 8);
  EXPECT_EQ(c, 6);
  EXPECT_EQ(s, 60);
}

TEST_F(HashTableTest, MemoryBytesGrowsWithUse) {
  AggHashTable table(spec_.get(), 1'000);
  int64_t before = table.MemoryBytes();
  for (int64_t g = 0; g < 1'000; ++g) {
    auto p = Proj(g, 1);
    table.UpsertProjected(p.data(), Hash(g));
  }
  EXPECT_GE(table.MemoryBytes(), before);
  EXPECT_GT(table.MemoryBytes(), 1'000 * 24);
}

}  // namespace
}  // namespace adaptagg
