#include "agg/agg_spec.h"

#include <gtest/gtest.h>

#include <cstring>

namespace adaptagg {
namespace {

Schema InputSchema() {
  return Schema({{"g", DataType::kInt64, 8},
                 {"tag", DataType::kBytes, 4},
                 {"vi", DataType::kInt64, 8},
                 {"vd", DataType::kDouble, 8}});
}

TEST(AggregationSpec, LayoutsForCountSum) {
  Schema in = InputSchema();
  auto spec = MakeCountSumSpec(&in, /*group_col=*/0, /*value_col=*/2);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->key_width(), 8);
  // COUNT has no input slot; SUM(vi) adds one 8-byte slot.
  EXPECT_EQ(spec->projected_width(), 16);
  // COUNT state 8 + SUM state 8.
  EXPECT_EQ(spec->state_width(), 16);
  EXPECT_EQ(spec->partial_width(), 24);
  EXPECT_EQ(spec->final_schema().num_fields(), 3);
  EXPECT_EQ(spec->final_schema().field(0).name, "g");
  EXPECT_EQ(spec->final_schema().field(1).name, "cnt");
  EXPECT_EQ(spec->final_schema().field(2).name, "sum_v");
}

TEST(AggregationSpec, SharedInputColumnGetsOneSlot) {
  Schema in = InputSchema();
  std::vector<AggDescriptor> aggs;
  aggs.push_back({AggKind::kSum, 2, "s"});
  aggs.push_back({AggKind::kAvg, 2, "a"});
  aggs.push_back({AggKind::kMin, 2, "m"});
  auto spec = AggregationSpec::Make(&in, {0}, std::move(aggs));
  ASSERT_TRUE(spec.ok());
  // One shared slot for column 2 despite three aggregates.
  EXPECT_EQ(spec->projected_width(), 8 + 8);
  // States: sum 8 + avg 16 + min 16.
  EXPECT_EQ(spec->state_width(), 40);
}

TEST(AggregationSpec, MultiColumnKeyIncludesBytes) {
  Schema in = InputSchema();
  auto spec = AggregationSpec::Make(
      &in, {0, 1}, {{AggKind::kCount, -1, "c"}});
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->key_width(), 12);
  EXPECT_EQ(spec->projected_width(), 12);
}

TEST(AggregationSpec, DistinctHasNoState) {
  Schema in = InputSchema();
  auto spec = MakeDistinctSpec(&in, {0, 1});
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->state_width(), 0);
  EXPECT_EQ(spec->partial_width(), spec->key_width());
  EXPECT_EQ(spec->final_schema().num_fields(), 2);
}

TEST(AggregationSpec, ValidationErrors) {
  Schema in = InputSchema();
  EXPECT_FALSE(AggregationSpec::Make(&in, {}, {}).ok());
  EXPECT_FALSE(AggregationSpec::Make(&in, {9}, {}).ok());
  EXPECT_FALSE(
      AggregationSpec::Make(&in, {0}, {{AggKind::kSum, 99, "x"}}).ok());
  // Aggregating a bytes column is rejected.
  EXPECT_FALSE(
      AggregationSpec::Make(&in, {0}, {{AggKind::kSum, 1, "x"}}).ok());
  // COUNT(*) needs no input column even when -1.
  EXPECT_TRUE(
      AggregationSpec::Make(&in, {0}, {{AggKind::kCount, -1, "c"}}).ok());
}

TEST(AggregationSpec, ProjectUpdateFinalizeRoundtrip) {
  Schema in = InputSchema();
  std::vector<AggDescriptor> aggs;
  aggs.push_back({AggKind::kCount, -1, "cnt"});
  aggs.push_back({AggKind::kSum, 2, "si"});
  aggs.push_back({AggKind::kAvg, 3, "ad"});
  auto spec = AggregationSpec::Make(&in, {0}, std::move(aggs));
  ASSERT_TRUE(spec.ok());

  TupleBuffer t(&in);
  std::vector<uint8_t> proj(static_cast<size_t>(spec->projected_width()));
  std::vector<uint8_t> state(static_cast<size_t>(spec->state_width()));
  spec->InitState(state.data());

  for (int i = 1; i <= 4; ++i) {
    t.SetInt64(0, 77);
    t.SetInt64(2, i);
    t.SetDouble(3, static_cast<double>(i) / 2);
    spec->ProjectRaw(t.view(), proj.data());
    spec->UpdateFromProjected(state.data(), proj.data());
  }

  std::vector<uint8_t> row(
      static_cast<size_t>(spec->final_schema().tuple_size()));
  spec->FinalizeRecord(spec->KeyOfProjected(proj.data()), state.data(),
                       row.data());
  TupleView out(row.data(), &spec->final_schema());
  EXPECT_EQ(out.GetInt64(0), 77);
  EXPECT_EQ(out.GetInt64(1), 4);                 // count
  EXPECT_EQ(out.GetInt64(2), 10);                // sum 1..4
  EXPECT_DOUBLE_EQ(out.GetDouble(3), 1.25);      // avg of 0.5..2.0
}

TEST(AggregationSpec, MergeStateEqualsSequentialUpdates) {
  Schema in = InputSchema();
  auto spec = MakeCountSumSpec(&in, 0, 2);
  ASSERT_TRUE(spec.ok());

  TupleBuffer t(&in);
  std::vector<uint8_t> proj(static_cast<size_t>(spec->projected_width()));
  std::vector<uint8_t> a(static_cast<size_t>(spec->state_width()));
  std::vector<uint8_t> b(static_cast<size_t>(spec->state_width()));
  std::vector<uint8_t> whole(static_cast<size_t>(spec->state_width()));
  spec->InitState(a.data());
  spec->InitState(b.data());
  spec->InitState(whole.data());

  for (int i = 0; i < 10; ++i) {
    t.SetInt64(0, 1);
    t.SetInt64(2, i);
    spec->ProjectRaw(t.view(), proj.data());
    spec->UpdateFromProjected(i < 6 ? a.data() : b.data(), proj.data());
    spec->UpdateFromProjected(whole.data(), proj.data());
  }
  spec->MergeState(a.data(), b.data());
  EXPECT_EQ(std::memcmp(a.data(), whole.data(), a.size()), 0);
}

TEST(AggregationSpec, HashKeyStableAndDiscriminating) {
  Schema in = InputSchema();
  auto spec = MakeCountSumSpec(&in, 0, 2);
  ASSERT_TRUE(spec.ok());
  int64_t k1 = 42, k2 = 43;
  uint64_t h1 = spec->HashKey(reinterpret_cast<uint8_t*>(&k1));
  uint64_t h1b = spec->HashKey(reinterpret_cast<uint8_t*>(&k1));
  uint64_t h2 = spec->HashKey(reinterpret_cast<uint8_t*>(&k2));
  EXPECT_EQ(h1, h1b);
  EXPECT_NE(h1, h2);
}

}  // namespace
}  // namespace adaptagg
