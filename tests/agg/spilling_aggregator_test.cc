#include "agg/spilling_aggregator.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>

namespace adaptagg {
namespace {

class SpillingAggregatorTest : public ::testing::Test {
 protected:
  SpillingAggregatorTest()
      : disk_(1024),
        schema_({{"g", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}}) {
    auto spec = MakeCountSumSpec(&schema_, 0, 1);
    EXPECT_TRUE(spec.ok());
    spec_ = std::make_unique<AggregationSpec>(std::move(spec).value());
  }

  std::vector<uint8_t> Proj(int64_t g, int64_t v) {
    std::vector<uint8_t> p(16);
    std::memcpy(p.data(), &g, 8);
    std::memcpy(p.data() + 8, &v, 8);
    return p;
  }

  std::vector<uint8_t> Partial(int64_t g, int64_t count, int64_t sum) {
    std::vector<uint8_t> p(24);
    std::memcpy(p.data(), &g, 8);
    std::memcpy(p.data() + 8, &count, 8);
    std::memcpy(p.data() + 16, &sum, 8);
    return p;
  }

  // Collects (group -> (count, sum)) from Finish().
  std::map<int64_t, std::pair<int64_t, int64_t>> Collect(
      SpillingAggregator& agg) {
    std::map<int64_t, std::pair<int64_t, int64_t>> out;
    Status st = agg.Finish([&](const uint8_t* key, const uint8_t* state) {
      int64_t g, c, s;
      std::memcpy(&g, key, 8);
      std::memcpy(&c, state, 8);
      std::memcpy(&s, state + 8, 8);
      EXPECT_TRUE(out.emplace(g, std::make_pair(c, s)).second)
          << "group " << g << " emitted twice";
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    return out;
  }

  SimDisk disk_;
  Schema schema_;
  std::unique_ptr<AggregationSpec> spec_;
};

TEST_F(SpillingAggregatorTest, InMemoryWhenGroupsFit) {
  SpillingAggregator agg(spec_.get(), &disk_, /*max_entries=*/100);
  for (int64_t g = 0; g < 50; ++g) {
    for (int rep = 0; rep < 3; ++rep) {
      ASSERT_TRUE(agg.AddProjected(Proj(g, g).data()).ok());
    }
  }
  EXPECT_FALSE(agg.has_spilled());
  auto result = Collect(agg);
  ASSERT_EQ(result.size(), 50u);
  for (int64_t g = 0; g < 50; ++g) {
    EXPECT_EQ(result[g].first, 3);
    EXPECT_EQ(result[g].second, 3 * g);
  }
  EXPECT_EQ(agg.stats().overflow_records, 0);
}

TEST_F(SpillingAggregatorTest, SpillsAndRecoversExactCounts) {
  SpillingAggregator agg(spec_.get(), &disk_, /*max_entries=*/32,
                         /*fanout=*/4);
  constexpr int64_t kGroups = 1'000;
  for (int64_t i = 0; i < 5'000; ++i) {
    int64_t g = i % kGroups;
    ASSERT_TRUE(agg.AddProjected(Proj(g, 1).data()).ok());
  }
  EXPECT_TRUE(agg.has_spilled());
  auto result = Collect(agg);
  ASSERT_EQ(result.size(), static_cast<size_t>(kGroups));
  for (const auto& [g, cs] : result) {
    EXPECT_EQ(cs.first, 5) << g;
    EXPECT_EQ(cs.second, 5) << g;
  }
  EXPECT_GT(agg.stats().overflow_records, 0);
  EXPECT_GT(agg.stats().spill_pages_written, 0);
  EXPECT_GT(agg.stats().spill_pages_read, 0);
  EXPECT_GE(agg.stats().max_depth, 1);
}

TEST_F(SpillingAggregatorTest, DeepRecursionTinyTable) {
  // M=2 with 200 groups forces multiple levels of repartitioning.
  SpillingAggregator agg(spec_.get(), &disk_, /*max_entries=*/2,
                         /*fanout=*/2);
  for (int64_t i = 0; i < 1'000; ++i) {
    ASSERT_TRUE(agg.AddProjected(Proj(i % 200, 2).data()).ok());
  }
  auto result = Collect(agg);
  ASSERT_EQ(result.size(), 200u);
  for (const auto& [g, cs] : result) {
    EXPECT_EQ(cs.first, 5);
    EXPECT_EQ(cs.second, 10);
  }
  EXPECT_GE(agg.stats().max_depth, 2);
}

TEST_F(SpillingAggregatorTest, MixedRawAndPartialInputs) {
  SpillingAggregator agg(spec_.get(), &disk_, /*max_entries=*/8,
                         /*fanout=*/2);
  // 100 groups, each gets 2 raw tuples (v=1) and one partial (3, 10).
  for (int64_t g = 0; g < 100; ++g) {
    ASSERT_TRUE(agg.AddProjected(Proj(g, 1).data()).ok());
    ASSERT_TRUE(agg.AddPartial(Partial(g, 3, 10).data()).ok());
    ASSERT_TRUE(agg.AddProjected(Proj(g, 1).data()).ok());
  }
  auto result = Collect(agg);
  ASSERT_EQ(result.size(), 100u);
  for (const auto& [g, cs] : result) {
    EXPECT_EQ(cs.first, 5) << g;   // 2 raw + partial count 3
    EXPECT_EQ(cs.second, 12) << g; // 2*1 + partial sum 10
  }
}

TEST_F(SpillingAggregatorTest, HeavyHitterNeverSpillsItsOwnUpdates) {
  // One group inserted first keeps aggregating in place even while other
  // groups overflow around it.
  SpillingAggregator agg(spec_.get(), &disk_, /*max_entries=*/4);
  ASSERT_TRUE(agg.AddProjected(Proj(0, 1).data()).ok());
  for (int64_t i = 0; i < 2'000; ++i) {
    ASSERT_TRUE(agg.AddProjected(Proj(1 + i % 50, 1).data()).ok());
    ASSERT_TRUE(agg.AddProjected(Proj(0, 1).data()).ok());
  }
  int64_t spilled_before = agg.stats().overflow_records;
  auto result = Collect(agg);
  EXPECT_EQ(result[0].first, 2'001);
  // The heavy group was resident from the start: its 2001 updates are
  // not in the spill count (only other groups' records are).
  EXPECT_LE(spilled_before, 2'000);
  EXPECT_EQ(result.size(), 51u);
}

TEST_F(SpillingAggregatorTest, EmptyFinish) {
  SpillingAggregator agg(spec_.get(), &disk_, 8);
  int emitted = 0;
  ASSERT_TRUE(
      agg.Finish([&](const uint8_t*, const uint8_t*) { ++emitted; }).ok());
  EXPECT_EQ(emitted, 0);
}

TEST_F(SpillingAggregatorTest, SpillFilesReleasedAfterFinish) {
  SpillingAggregator agg(spec_.get(), &disk_, 4, 2);
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(agg.AddProjected(Proj(i, 1).data()).ok());
  }
  Collect(agg);
  // All spill bucket files were dropped; writing to the disk again works
  // and SimDisk holds no leaked pages for them (new file starts empty).
  auto probe = disk_.CreateFile("probe");
  ASSERT_TRUE(probe.ok());
  auto pages = disk_.NumPages(*probe);
  ASSERT_TRUE(pages.ok());
  EXPECT_EQ(*pages, 0);
}

TEST_F(SpillingAggregatorTest, DistinctSpecZeroStateWidth) {
  auto distinct = MakeDistinctSpec(&schema_, {0});
  ASSERT_TRUE(distinct.ok());
  SpillingAggregator agg(&*distinct, &disk_, 16, 2);
  std::vector<uint8_t> rec(8);
  for (int64_t i = 0; i < 1'000; ++i) {
    int64_t g = i % 77;
    std::memcpy(rec.data(), &g, 8);
    ASSERT_TRUE(agg.AddProjected(rec.data()).ok());
  }
  int emitted = 0;
  ASSERT_TRUE(
      agg.Finish([&](const uint8_t*, const uint8_t*) { ++emitted; }).ok());
  EXPECT_EQ(emitted, 77);
}

}  // namespace
}  // namespace adaptagg
