#include "agg/sort_aggregator.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>

namespace adaptagg {
namespace {

class SortAggregatorTest : public ::testing::Test {
 protected:
  SortAggregatorTest()
      : disk_(512),
        schema_({{"g", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}}) {
    auto spec = MakeCountSumSpec(&schema_, 0, 1);
    EXPECT_TRUE(spec.ok());
    spec_ = std::make_unique<AggregationSpec>(std::move(spec).value());
  }

  std::vector<uint8_t> Proj(int64_t g, int64_t v) {
    std::vector<uint8_t> p(16);
    std::memcpy(p.data(), &g, 8);
    std::memcpy(p.data() + 8, &v, 8);
    return p;
  }

  std::vector<uint8_t> Partial(int64_t g, int64_t count, int64_t sum) {
    std::vector<uint8_t> p(24);
    std::memcpy(p.data(), &g, 8);
    std::memcpy(p.data() + 8, &count, 8);
    std::memcpy(p.data() + 16, &sum, 8);
    return p;
  }

  std::map<int64_t, std::pair<int64_t, int64_t>> Collect(
      SortAggregator& agg) {
    std::map<int64_t, std::pair<int64_t, int64_t>> out;
    Status st = agg.Finish([&](const uint8_t* key, const uint8_t* state) {
      int64_t g, c, s;
      std::memcpy(&g, key, 8);
      std::memcpy(&c, state, 8);
      std::memcpy(&s, state + 8, 8);
      EXPECT_TRUE(out.emplace(g, std::make_pair(c, s)).second)
          << "group " << g << " emitted twice";
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    return out;
  }

  SimDisk disk_;
  Schema schema_;
  std::unique_ptr<AggregationSpec> spec_;
};

TEST_F(SortAggregatorTest, InMemoryAggregation) {
  SortAggregator agg(spec_.get(), &disk_, /*max_records=*/1'000);
  for (int64_t g = 0; g < 50; ++g) {
    for (int rep = 0; rep < 4; ++rep) {
      ASSERT_TRUE(agg.AddProjected(Proj(g, g + rep).data()).ok());
    }
  }
  EXPECT_EQ(agg.num_runs(), 0);
  auto result = Collect(agg);
  ASSERT_EQ(result.size(), 50u);
  for (const auto& [g, cs] : result) {
    EXPECT_EQ(cs.first, 4);
    EXPECT_EQ(cs.second, 4 * g + 6);
  }
}

TEST_F(SortAggregatorTest, ExternalRunsExactCounts) {
  SortAggregator agg(spec_.get(), &disk_, /*max_records=*/32);
  constexpr int64_t kGroups = 300;
  for (int64_t i = 0; i < 3'000; ++i) {
    ASSERT_TRUE(agg.AddProjected(Proj(i % kGroups, 1).data()).ok());
  }
  EXPECT_GT(agg.num_runs(), 10);
  EXPECT_GT(agg.run_pages_written(), 0);
  auto result = Collect(agg);
  ASSERT_EQ(result.size(), static_cast<size_t>(kGroups));
  for (const auto& [g, cs] : result) {
    EXPECT_EQ(cs.first, 10) << g;
    EXPECT_EQ(cs.second, 10) << g;
  }
}

TEST_F(SortAggregatorTest, MixedRawAndPartial) {
  SortAggregator agg(spec_.get(), &disk_, /*max_records=*/16);
  for (int64_t g = 0; g < 80; ++g) {
    ASSERT_TRUE(agg.AddProjected(Proj(g, 2).data()).ok());
    ASSERT_TRUE(agg.AddPartial(Partial(g, 5, 50).data()).ok());
    ASSERT_TRUE(agg.AddProjected(Proj(g, 3).data()).ok());
  }
  auto result = Collect(agg);
  ASSERT_EQ(result.size(), 80u);
  for (const auto& [g, cs] : result) {
    EXPECT_EQ(cs.first, 7) << g;   // 2 raw + 5
    EXPECT_EQ(cs.second, 55) << g; // 2+3 + 50
  }
}

TEST_F(SortAggregatorTest, EmitsInKeyOrder) {
  SortAggregator agg(spec_.get(), &disk_, 8);
  // Keys with identical memcmp-relevant structure: use small positive
  // keys so little-endian memcmp order == numeric order within one byte.
  for (int64_t g : {200, 13, 91, 0, 255, 64}) {
    ASSERT_TRUE(agg.AddProjected(Proj(g, 1).data()).ok());
  }
  std::vector<int64_t> order;
  ASSERT_TRUE(agg.Finish([&](const uint8_t* key, const uint8_t*) {
                   int64_t g;
                   std::memcpy(&g, key, 8);
                   order.push_back(g);
                 })
                  .ok());
  EXPECT_EQ(order, (std::vector<int64_t>{0, 13, 64, 91, 200, 255}));
}

TEST_F(SortAggregatorTest, EmptyInput) {
  SortAggregator agg(spec_.get(), &disk_, 8);
  int emitted = 0;
  ASSERT_TRUE(
      agg.Finish([&](const uint8_t*, const uint8_t*) { ++emitted; }).ok());
  EXPECT_EQ(emitted, 0);
}

TEST_F(SortAggregatorTest, SingleGroupManyRecords) {
  SortAggregator agg(spec_.get(), &disk_, 16);
  for (int i = 0; i < 1'000; ++i) {
    ASSERT_TRUE(agg.AddProjected(Proj(7, 1).data()).ok());
  }
  auto result = Collect(agg);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[7].first, 1'000);
}

}  // namespace
}  // namespace adaptagg
