// AggHashTable radix pre-partitioning: staging accounting, drain
// equivalence against the hash-direct path, overflow hand-off, and
// Clear()/reuse semantics.

#include "agg/hash_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "agg/batch_kernels.h"

namespace adaptagg {
namespace {

class RadixPartitionTest : public ::testing::Test {
 protected:
  RadixPartitionTest()
      : schema_({{"g", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}}) {
    auto spec = MakeCountSumSpec(&schema_, 0, 1);
    EXPECT_TRUE(spec.ok());
    spec_ = std::make_unique<AggregationSpec>(std::move(spec).value());
  }

  /// n projected (g, v) records with groups cycling 0..groups-1.
  std::vector<uint8_t> MakeProjected(int n, int64_t groups) {
    std::vector<uint8_t> recs(static_cast<size_t>(n) * 16);
    for (int i = 0; i < n; ++i) {
      const int64_t g = i % groups;
      const int64_t v = i;
      std::memcpy(recs.data() + i * 16, &g, 8);
      std::memcpy(recs.data() + i * 16 + 8, &v, 8);
    }
    return recs;
  }

  /// Feeds `recs` through UpsertProjectedBatchOverflow in batch runs.
  void Feed(AggHashTable& table, const std::vector<uint8_t>& recs,
            std::vector<int>& overflow) {
    TupleBatch batch(spec_.get());
    const int n = static_cast<int>(recs.size() / 16);
    for (int off = 0; off < n; off += kBatchWidth) {
      const int run = std::min(kBatchWidth, n - off);
      batch.BindView(recs.data() + static_cast<size_t>(off) * 16, 16, run);
      batch.ComputeHashes();
      table.UpsertProjectedBatchOverflow(batch, 0, overflow);
    }
  }

  /// (group -> (count, sum)) snapshot, plus the emit order of groups.
  std::pair<std::map<int64_t, std::pair<int64_t, int64_t>>,
            std::vector<int64_t>>
  Snapshot(const AggHashTable& table) {
    std::map<int64_t, std::pair<int64_t, int64_t>> by_group;
    std::vector<int64_t> order;
    table.ForEach([&](const uint8_t* key, const uint8_t* state) {
      int64_t g, c, s;
      std::memcpy(&g, key, 8);
      std::memcpy(&c, state, 8);
      std::memcpy(&s, state + 8, 8);
      EXPECT_TRUE(by_group.emplace(g, std::make_pair(c, s)).second);
      order.push_back(g);
    });
    return {std::move(by_group), std::move(order)};
  }

  Schema schema_;
  std::unique_ptr<AggregationSpec> spec_;
};

TEST_F(RadixPartitionTest, DrainMatchesHashDirectByteForByte) {
  const std::vector<uint8_t> recs = MakeProjected(5'000, 700);
  std::vector<int> ovf_a, ovf_b;

  AggHashTable direct(spec_.get(), 100'000);
  Feed(direct, recs, ovf_a);

  AggHashTable radix(spec_.get(), 100'000);
  radix.EnableRadixPartitioning(8);
  EXPECT_TRUE(radix.radix_partitioning());
  EXPECT_EQ(radix.radix_partitions(), 8);
  Feed(radix, recs, ovf_b);
  radix.FlushRadixStaging();
  EXPECT_EQ(radix.radix_staged_bytes(), 0);

  EXPECT_TRUE(ovf_a.empty());
  EXPECT_TRUE(ovf_b.empty());
  EXPECT_EQ(direct.size(), radix.size());
  const auto [direct_groups, direct_order] = Snapshot(direct);
  const auto [radix_groups, radix_order] = Snapshot(radix);
  EXPECT_EQ(direct_groups, radix_groups);
  // Emit order too: radix replays first-occurrence sequence order.
  EXPECT_EQ(direct_order, radix_order);
}

TEST_F(RadixPartitionTest, StatsTotalsMatchHashDirect) {
  const std::vector<uint8_t> recs = MakeProjected(3'000, 250);
  std::vector<int> ovf;

  AggHashTable direct(spec_.get(), 100'000);
  Feed(direct, recs, ovf);

  AggHashTable radix(spec_.get(), 100'000);
  radix.EnableRadixPartitioning(4);
  Feed(radix, recs, ovf);
  radix.FlushRadixStaging();

  EXPECT_EQ(radix.stats().batch_tuples, direct.stats().batch_tuples);
  EXPECT_EQ(radix.stats().probes, direct.stats().probes);
  EXPECT_EQ(radix.stats().inserts, direct.stats().inserts);
  EXPECT_EQ(radix.stats().hits, direct.stats().hits);
  EXPECT_EQ(radix.stats().fused_tuples, direct.stats().fused_tuples);
}

TEST_F(RadixPartitionTest, MemoryBytesCountsStagingBuffers) {
  AggHashTable radix(spec_.get(), 100'000);
  radix.EnableRadixPartitioning(8);
  const int64_t empty_bytes = radix.MemoryBytes();

  const std::vector<uint8_t> recs = MakeProjected(2'000, 2'000);
  std::vector<int> ovf;
  Feed(radix, recs, ovf);
  // All records distinct groups: staging holds them until flush (well
  // under the soft cap), and MemoryBytes must see those buffers.
  EXPECT_GT(radix.radix_staged_bytes(), 0);
  EXPECT_GE(radix.MemoryBytes(),
            empty_bytes + radix.radix_staged_bytes());

  radix.FlushRadixStaging();
  EXPECT_EQ(radix.radix_staged_bytes(), 0);
  // Capacity is retained, so MemoryBytes stays honest about it.
  EXPECT_GE(radix.MemoryBytes(), empty_bytes);
}

TEST_F(RadixPartitionTest, OverflowSurfacesEveryRefusedRecord) {
  // 64-slot table, 500 groups: most records are refused, and every one
  // must come back out of DrainRadixOverflow exactly once.
  const int n = 1'000;
  const std::vector<uint8_t> recs = MakeProjected(n, 500);
  std::vector<int> ovf;

  AggHashTable radix(spec_.get(), 64);
  radix.EnableRadixPartitioning(4);
  Feed(radix, recs, ovf);
  radix.FlushRadixStaging();
  EXPECT_TRUE(ovf.empty()) << "radix mode must not use caller overflow";

  std::map<int64_t, int64_t> refused_count_sum;
  int64_t refused = 0;
  Status st = radix.DrainRadixOverflow(
      [&](bool is_partial, uint64_t hash, const uint8_t* rec) -> Status {
        EXPECT_FALSE(is_partial);
        int64_t g;
        std::memcpy(&g, rec, 8);
        EXPECT_EQ(hash, spec_->HashKey(rec));
        int64_t v;
        std::memcpy(&v, rec + 8, 8);
        refused_count_sum[g] += v;
        ++refused;
        return Status::OK();
      });
  EXPECT_TRUE(st.ok());

  // Folding the refused records back over the table's contents must
  // reconstruct the full input: count n, sum 0..n-1.
  int64_t total_count = 0;
  int64_t total_sum = 0;
  radix.ForEach([&](const uint8_t*, const uint8_t* state) {
    int64_t c, s;
    std::memcpy(&c, state, 8);
    std::memcpy(&s, state + 8, 8);
    total_count += c;
    total_sum += s;
  });
  EXPECT_EQ(radix.size(), 64);
  EXPECT_GT(refused, 0);
  EXPECT_EQ(total_count + refused, n);
  for (const auto& [g, sum] : refused_count_sum) total_sum += sum;
  EXPECT_EQ(total_sum, static_cast<int64_t>(n) * (n - 1) / 2);

  // The drain clears the pending buffer.
  st = radix.DrainRadixOverflow(
      [&](bool, uint64_t, const uint8_t*) -> Status {
        ADD_FAILURE() << "buffer should be empty";
        return Status::OK();
      });
  EXPECT_TRUE(st.ok());
}

TEST_F(RadixPartitionTest, ClearKeepsRadixModeAndReuses) {
  const std::vector<uint8_t> recs = MakeProjected(1'000, 100);
  std::vector<int> ovf;

  AggHashTable radix(spec_.get(), 100'000);
  radix.EnableRadixPartitioning(4);
  Feed(radix, recs, ovf);
  radix.FlushRadixStaging();
  EXPECT_EQ(radix.size(), 100);

  radix.Clear();
  EXPECT_EQ(radix.size(), 0);
  EXPECT_TRUE(radix.radix_partitioning());
  EXPECT_EQ(radix.radix_staged_bytes(), 0);

  Feed(radix, recs, ovf);
  radix.FlushRadixStaging();
  EXPECT_EQ(radix.size(), 100);
  const auto [groups, order] = Snapshot(radix);
  EXPECT_EQ(groups.size(), 100u);
  for (const auto& [g, cs] : groups) {
    EXPECT_EQ(cs.first, 10) << g;  // 1000 records over 100 groups
  }
}

TEST_F(RadixPartitionTest, SoftCapDrainsMidStream) {
  // Wide enough input that a 2-partition split crosses the per-partition
  // staging soft cap (4 MB) before the flush: 400k records * 24 bytes
  // per staged entry / 2 partitions > 4 MB per partition.
  const int n = 400'000;
  std::vector<uint8_t> recs(static_cast<size_t>(n) * 16);
  for (int i = 0; i < n; ++i) {
    const int64_t g = i % 1'000;
    const int64_t v = 1;
    std::memcpy(recs.data() + static_cast<size_t>(i) * 16, &g, 8);
    std::memcpy(recs.data() + static_cast<size_t>(i) * 16 + 8, &v, 8);
  }
  std::vector<int> ovf;
  AggHashTable radix(spec_.get(), 100'000);
  radix.EnableRadixPartitioning(2);
  Feed(radix, recs, ovf);
  // At least one partition must have drained before the flush: staged
  // entries carry an 8-byte seq/tag header plus the 16-byte projected
  // record, so an undrained table would park exactly 24 bytes per
  // record.
  EXPECT_LT(radix.radix_staged_bytes(), static_cast<int64_t>(n) * 24);
  radix.FlushRadixStaging();
  EXPECT_EQ(radix.size(), 1'000);
  int64_t total = 0;
  radix.ForEach([&](const uint8_t*, const uint8_t* state) {
    int64_t c;
    std::memcpy(&c, state, 8);
    total += c;
  });
  EXPECT_EQ(total, n);
}

}  // namespace
}  // namespace adaptagg
