// Concurrency torture of SharedAggHashTable, the kShared merge
// topology's table: many threads fold partial aggregates into one table
// and the result must match a sequential reference byte for byte, on
// both the lock-free CAS plane (all-int64-additive states) and the
// striped-lock plane (min/max and generic kernels). Run under TSan in
// the sanitizer CI job, this is the data-race proof for the shared
// merge.

#include "agg/hash_table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

namespace adaptagg {
namespace {

constexpr int kThreads = 8;
constexpr int64_t kGroups = 512;
constexpr int64_t kRecordsPerThread = 10'000;

Schema MakeTwoColSchema() {
  return Schema({{"g", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}});
}

std::vector<uint8_t> Proj(int64_t g, int64_t v) {
  std::vector<uint8_t> p(16);
  std::memcpy(p.data(), &g, 8);
  std::memcpy(p.data() + 8, &v, 8);
  return p;
}

/// Deterministic pseudo-values: spread groups and values without any
/// randomness so every run (and the reference) sees the same stream.
int64_t GroupOf(int t, int64_t i) { return (i * 31 + t * 7) % kGroups; }
int64_t ValueOf(int t, int64_t i) { return (i * 13 + t) % 1'000 - 500; }

/// Folds thread `t`'s share of the stream into a private table and
/// returns its groups as partial records.
std::vector<std::vector<uint8_t>> ThreadPartials(
    const AggregationSpec& spec, int t) {
  AggHashTable local(&spec, kGroups + 8);
  for (int64_t i = 0; i < kRecordsPerThread; ++i) {
    auto p = Proj(GroupOf(t, i), ValueOf(t, i));
    const uint64_t h = spec.HashKey(p.data());
    EXPECT_NE(local.UpsertProjected(p.data(), h),
              AggHashTable::UpsertResult::kFull);
  }
  std::vector<std::vector<uint8_t>> partials;
  local.ForEach([&](const uint8_t* key, const uint8_t* state) {
    std::vector<uint8_t> rec(static_cast<size_t>(spec.partial_width()));
    std::memcpy(rec.data(), key, static_cast<size_t>(spec.key_width()));
    std::memcpy(rec.data() + spec.key_width(), state,
                static_cast<size_t>(spec.state_width()));
    partials.push_back(std::move(rec));
  });
  return partials;
}

/// The same stream folded sequentially: group key -> final state bytes.
std::map<int64_t, std::vector<uint8_t>> Reference(
    const AggregationSpec& spec) {
  AggHashTable table(&spec, kGroups + 8);
  for (int t = 0; t < kThreads; ++t) {
    for (int64_t i = 0; i < kRecordsPerThread; ++i) {
      auto p = Proj(GroupOf(t, i), ValueOf(t, i));
      table.UpsertProjected(p.data(), spec.HashKey(p.data()));
    }
  }
  std::map<int64_t, std::vector<uint8_t>> out;
  table.ForEach([&](const uint8_t* key, const uint8_t* state) {
    int64_t g;
    std::memcpy(&g, key, 8);
    out[g].assign(state, state + spec.state_width());
  });
  return out;
}

/// Hammers `shared` from kThreads threads and checks the merged states
/// against the sequential reference.
void RunTorture(const AggregationSpec& spec, SharedAggHashTable& shared) {
  std::vector<std::thread> threads;
  std::atomic<int> refusals{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (const auto& rec : ThreadPartials(spec, t)) {
        if (!shared.UpsertPartialConcurrent(rec.data(),
                                            spec.HashKey(rec.data()))) {
          refusals.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(refusals.load(), 0);
  EXPECT_EQ(shared.size(), kGroups);

  const auto expected = Reference(spec);
  int64_t seen = 0;
  shared.ForEach([&](const uint8_t* key, const uint8_t* state) {
    int64_t g;
    std::memcpy(&g, key, 8);
    auto it = expected.find(g);
    ASSERT_NE(it, expected.end()) << "phantom group " << g;
    EXPECT_EQ(std::memcmp(state, it->second.data(), it->second.size()), 0)
        << "state mismatch for group " << g;
    ++seen;
  });
  EXPECT_EQ(seen, static_cast<int64_t>(expected.size()));
}

TEST(SharedAggHashTable, LockFreePlaneMatchesSequentialReference) {
  Schema schema = MakeTwoColSchema();
  auto spec_or = MakeCountSumSpec(&schema, 0, 1);
  ASSERT_TRUE(spec_or.ok());
  AggregationSpec spec = std::move(spec_or).value();
  ASSERT_EQ(spec.fused_merge_kernel(), FusedMergeKind::kAddInt64);

  SharedAggHashTable shared(&spec, 4 * kGroups);
  ASSERT_TRUE(shared.lock_free());
  RunTorture(spec, shared);
  EXPECT_EQ(shared.locked_merges(), 0);
}

TEST(SharedAggHashTable, StripedPlaneMatchesSequentialReference) {
  Schema schema = MakeTwoColSchema();
  std::vector<AggDescriptor> aggs;
  aggs.push_back({AggKind::kMin, 1, "min_v"});
  aggs.push_back({AggKind::kMax, 1, "max_v"});
  auto spec_or = AggregationSpec::Make(&schema, {0}, std::move(aggs));
  ASSERT_TRUE(spec_or.ok());
  AggregationSpec spec = std::move(spec_or).value();
  ASSERT_EQ(spec.fused_merge_kernel(), FusedMergeKind::kMinMaxInt64);

  SharedAggHashTable shared(&spec, 4 * kGroups);
  ASSERT_FALSE(shared.lock_free());
  RunTorture(spec, shared);
  // Every repeat-group merge serialized on a stripe: (threads * groups)
  // inserts-or-merges minus the kGroups first-insertions.
  EXPECT_GT(shared.locked_merges(), 0);
}

TEST(SharedAggHashTable, RefusesAtLoadCeilingAndKeepsPublishedGroups) {
  Schema schema = MakeTwoColSchema();
  auto spec_or = MakeCountSumSpec(&schema, 0, 1);
  ASSERT_TRUE(spec_or.ok());
  AggregationSpec spec = std::move(spec_or).value();

  // Capacity rounds up to 64; the load ceiling is 70% of that.
  SharedAggHashTable shared(&spec, 1);
  EXPECT_EQ(shared.capacity(), 64);
  const int64_t ceiling = 64 * 7 / 10;
  int64_t accepted = 0;
  int64_t refused = 0;
  for (int64_t g = 0; g < 200; ++g) {
    AggHashTable local(&spec, 4);
    auto p = Proj(g, 1);
    local.UpsertProjected(p.data(), spec.HashKey(p.data()));
    local.ForEach([&](const uint8_t* key, const uint8_t* state) {
      std::vector<uint8_t> rec(static_cast<size_t>(spec.partial_width()));
      std::memcpy(rec.data(), key, 8);
      std::memcpy(rec.data() + 8, state,
                  static_cast<size_t>(spec.state_width()));
      if (shared.UpsertPartialConcurrent(rec.data(),
                                         spec.HashKey(rec.data()))) {
        ++accepted;
      } else {
        ++refused;
      }
    });
  }
  EXPECT_EQ(accepted, ceiling);
  EXPECT_EQ(refused, 200 - ceiling);
  EXPECT_EQ(shared.size(), ceiling);

  // Existing groups still merge fine at the ceiling.
  AggHashTable local(&spec, 4);
  auto p = Proj(0, 5);
  local.UpsertProjected(p.data(), spec.HashKey(p.data()));
  local.ForEach([&](const uint8_t* key, const uint8_t* state) {
    std::vector<uint8_t> rec(static_cast<size_t>(spec.partial_width()));
    std::memcpy(rec.data(), key, 8);
    std::memcpy(rec.data() + 8, state,
                static_cast<size_t>(spec.state_width()));
    EXPECT_TRUE(shared.UpsertPartialConcurrent(
        rec.data(), spec.HashKey(rec.data())));
  });
  EXPECT_EQ(shared.size(), ceiling);
}

TEST(SharedMergeArenaTest, GetOrInitIsIdempotentAndResetClears) {
  Schema schema = MakeTwoColSchema();
  auto spec_or = MakeCountSumSpec(&schema, 0, 1);
  ASSERT_TRUE(spec_or.ok());
  AggregationSpec spec = std::move(spec_or).value();

  SharedMergeArena arena;
  SharedAggHashTable* a = arena.GetOrInit(&spec, 1'000);
  SharedAggHashTable* b = arena.GetOrInit(&spec, 1'000);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b) << "every node must get the same table";

  auto p = Proj(3, 4);
  AggHashTable local(&spec, 4);
  local.UpsertProjected(p.data(), spec.HashKey(p.data()));
  local.ForEach([&](const uint8_t* key, const uint8_t* state) {
    std::vector<uint8_t> rec(static_cast<size_t>(spec.partial_width()));
    std::memcpy(rec.data(), key, 8);
    std::memcpy(rec.data() + 8, state,
                static_cast<size_t>(spec.state_width()));
    EXPECT_TRUE(
        a->UpsertPartialConcurrent(rec.data(), spec.HashKey(rec.data())));
  });
  EXPECT_EQ(a->size(), 1);

  arena.Reset();
  SharedAggHashTable* c = arena.GetOrInit(&spec, 1'000);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->size(), 0) << "a reset arena must hand out a fresh table";
}

}  // namespace
}  // namespace adaptagg
