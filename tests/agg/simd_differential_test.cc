// Differential suite for the SIMD batch kernels: the dispatched path
// (AVX2 on CI's x86 hosts) and the forced-scalar fallback must produce
// byte-identical aggregation results over the full AggKind x value-type
// x key-width matrix, including NaN doubles, int64 sentinel extremes,
// and batch sizes that straddle the 8-lane groups.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "agg/batch_kernels.h"
#include "agg/spilling_aggregator.h"
#include "common/simd.h"
#include "storage/disk.h"

namespace adaptagg {
namespace {

class ScopedForceScalar {
 public:
  ScopedForceScalar() {
    const char* prev = std::getenv("ADAPTAGG_FORCE_SCALAR");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv("ADAPTAGG_FORCE_SCALAR", "1", 1);
    simd::ResetDispatchForTest();
  }
  ~ScopedForceScalar() {
    if (had_prev_) {
      setenv("ADAPTAGG_FORCE_SCALAR", prev_.c_str(), 1);
    } else {
      unsetenv("ADAPTAGG_FORCE_SCALAR");
    }
    simd::ResetDispatchForTest();
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

/// Pins ADAPTAGG_FORCE_CLASSIFY=1, routing eligible batch upserts
/// through the 8-lane classify probe (dormant by default — the
/// streaming loop measured faster everywhere; see AggHashTable::
/// UseClassify).
class ScopedForceClassify {
 public:
  ScopedForceClassify() {
    const char* prev = std::getenv("ADAPTAGG_FORCE_CLASSIFY");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv("ADAPTAGG_FORCE_CLASSIFY", "1", 1);
  }
  ~ScopedForceClassify() {
    if (had_prev_) {
      setenv("ADAPTAGG_FORCE_CLASSIFY", prev_.c_str(), 1);
    } else {
      unsetenv("ADAPTAGG_FORCE_CLASSIFY");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

/// One matrix cell: a spec over the 5-column test schema plus the data
/// shape that exercises it.
struct Cell {
  std::string name;
  std::vector<int> group_cols;
  std::vector<AggDescriptor> aggs;
  bool distinct = false;
};

Schema TestSchema() {
  return Schema({{"g1", DataType::kInt64, 8},
                 {"g2", DataType::kInt64, 8},
                 {"g3", DataType::kInt64, 8},
                 {"vi", DataType::kInt64, 8},
                 {"vd", DataType::kDouble, 8}});
}

std::vector<Cell> Matrix() {
  std::vector<Cell> cells;
  for (int keys = 1; keys <= 3; ++keys) {
    std::vector<int> group_cols;
    for (int c = 0; c < keys; ++c) group_cols.push_back(c);
    const std::string kw = "k" + std::to_string(keys * 8);
    cells.push_back({"count_sum_i64_" + kw, group_cols,
                     {{AggKind::kCount, -1, "c"},
                      {AggKind::kSum, 3, "s"}}});
    cells.push_back({"sum_double_" + kw, group_cols,
                     {{AggKind::kSum, 4, "sd"}}});
    cells.push_back({"avg_both_" + kw, group_cols,
                     {{AggKind::kAvg, 3, "ai"},
                      {AggKind::kAvg, 4, "ad"}}});
    cells.push_back({"minmax_i64_" + kw, group_cols,
                     {{AggKind::kMin, 3, "mn"},
                      {AggKind::kMax, 3, "mx"}}});
    cells.push_back({"minmax_double_" + kw, group_cols,
                     {{AggKind::kMin, 4, "mn"},
                      {AggKind::kMax, 4, "mx"}}});
    cells.push_back({"mixed_" + kw, group_cols,
                     {{AggKind::kCount, -1, "c"},
                      {AggKind::kSum, 3, "s"},
                      {AggKind::kMin, 3, "mn"}}});
    Cell distinct{"distinct_" + kw, group_cols, {}};
    distinct.distinct = true;
    cells.push_back(distinct);
  }
  return cells;
}

/// Deterministic input rows with adversarial values: sentinel int64
/// extremes, NaN / infinities / signed zero doubles, and group ids that
/// collide across the 3 key columns.
std::vector<uint8_t> MakeRows(const Schema& schema, int n, int groups) {
  const int w = schema.tuple_size();
  std::vector<uint8_t> rows(static_cast<size_t>(n) * w);
  constexpr int64_t kI64Min = std::numeric_limits<int64_t>::min();
  constexpr int64_t kI64Max = std::numeric_limits<int64_t>::max();
  const double specials[] = {std::nan(""),
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             -0.0, 1.5e300, -2.25};
  for (int i = 0; i < n; ++i) {
    uint8_t* row = rows.data() + static_cast<size_t>(i) * w;
    const int64_t g1 = i % groups;
    const int64_t g2 = (i % 7 == 0) ? kI64Min : (i / groups) % 3;
    const int64_t g3 = (i % 11 == 0) ? kI64Max : g1 / 2;
    int64_t vi = static_cast<int64_t>(i) * 37 - 500;
    if (i % 13 == 0) vi = kI64Min;
    if (i % 17 == 0) vi = kI64Max;
    const double vd =
        (i % 5 == 0) ? specials[static_cast<size_t>(i / 5) % 6]
                     : static_cast<double>(i) * 0.125 - 3.0;
    std::memcpy(row, &g1, 8);
    std::memcpy(row + 8, &g2, 8);
    std::memcpy(row + 16, &g3, 8);
    std::memcpy(row + 24, &vi, 8);
    std::memcpy(row + 32, &vd, 8);
  }
  return rows;
}

/// Projects every row, feeds them through AddProjectedBatch in a batch
/// schedule that covers sizes 1, kBatchWidth - 1, and kBatchWidth, and
/// returns the emitted (key, state) byte stream in emit order.
std::vector<uint8_t> RunProjected(const AggregationSpec& spec,
                                  const std::vector<uint8_t>& rows, int n,
                                  int64_t max_entries, int radix) {
  const Schema& schema = spec.input_schema();
  const int pw = spec.projected_width();
  std::vector<uint8_t> projected(static_cast<size_t>(n) * pw);
  for (int i = 0; i < n; ++i) {
    TupleView t(rows.data() + static_cast<size_t>(i) * schema.tuple_size(),
                &schema);
    spec.ProjectRaw(t, projected.data() + static_cast<size_t>(i) * pw);
  }

  SimDisk disk(1024);
  SpillingAggregator agg(&spec, &disk, max_entries, /*fanout=*/4, "diff");
  if (radix > 0) agg.EnableRadixPartitioning(radix);
  TupleBatch batch(&spec);
  const int sizes[] = {1, kBatchWidth - 1, kBatchWidth};
  int off = 0;
  int step = 0;
  while (off < n) {
    const int run = std::min(sizes[step++ % 3], n - off);
    batch.BindView(projected.data() + static_cast<size_t>(off) * pw, pw,
                   run);
    batch.ComputeHashes();
    Status st = agg.AddProjectedBatch(batch);
    EXPECT_TRUE(st.ok()) << st.ToString();
    off += run;
  }
  batch.Clear();

  std::vector<uint8_t> out;
  Status st = agg.Finish([&](const uint8_t* key, const uint8_t* state) {
    out.insert(out.end(), key, key + spec.key_width());
    out.insert(out.end(), state, state + spec.state_width());
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

/// Same, but shipping *partial* records through AddPartialBatch: each
/// input row becomes a single-tuple partial, so the merge kernels (the
/// fused add / min-max merges) do all the work.
std::vector<uint8_t> RunPartials(const AggregationSpec& spec,
                                 const std::vector<uint8_t>& rows, int n,
                                 int64_t max_entries, int radix) {
  const Schema& schema = spec.input_schema();
  const int pw = spec.projected_width();
  const int kw = spec.key_width();
  const int ww = spec.partial_width();
  std::vector<uint8_t> proj(static_cast<size_t>(pw));
  std::vector<uint8_t> partials(static_cast<size_t>(n) * ww);
  for (int i = 0; i < n; ++i) {
    TupleView t(rows.data() + static_cast<size_t>(i) * schema.tuple_size(),
                &schema);
    spec.ProjectRaw(t, proj.data());
    uint8_t* p = partials.data() + static_cast<size_t>(i) * ww;
    std::memcpy(p, proj.data(), static_cast<size_t>(kw));
    spec.InitState(p + kw);
    spec.UpdateFromProjected(p + kw, proj.data());
  }

  SimDisk disk(1024);
  SpillingAggregator agg(&spec, &disk, max_entries, /*fanout=*/4, "diffp");
  if (radix > 0) agg.EnableRadixPartitioning(radix);
  TupleBatch batch(&spec);
  const int sizes[] = {kBatchWidth, 1, kBatchWidth - 1};
  int off = 0;
  int step = 0;
  while (off < n) {
    const int run = std::min(sizes[step++ % 3], n - off);
    batch.BindView(partials.data() + static_cast<size_t>(off) * ww, ww,
                   run);
    batch.ComputeHashes();
    Status st = agg.AddPartialBatch(batch);
    EXPECT_TRUE(st.ok()) << st.ToString();
    off += run;
  }
  batch.Clear();

  std::vector<uint8_t> out;
  Status st = agg.Finish([&](const uint8_t* key, const uint8_t* state) {
    out.insert(out.end(), key, key + spec.key_width());
    out.insert(out.end(), state, state + spec.state_width());
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

/// Splits an emitted byte stream into records and sorts them, for
/// comparisons where emit *order* is legitimately different (a full
/// table under forced radix refuses different keys than hash-direct, so
/// only the final (key, state) multiset is invariant — which is exactly
/// why the auto policy never engages radix when groups may overflow M).
std::vector<std::vector<uint8_t>> SortedRecords(
    const std::vector<uint8_t>& stream, size_t width) {
  std::vector<std::vector<uint8_t>> recs;
  EXPECT_EQ(width == 0 ? 0 : stream.size() % width, 0u);
  for (size_t off = 0; off + width <= stream.size(); off += width) {
    recs.emplace_back(stream.begin() + static_cast<int64_t>(off),
                      stream.begin() + static_cast<int64_t>(off + width));
  }
  std::sort(recs.begin(), recs.end());
  return recs;
}

AggregationSpec MakeCellSpec(const Schema* schema, const Cell& cell) {
  Result<AggregationSpec> spec =
      cell.distinct ? MakeDistinctSpec(schema, cell.group_cols)
                    : AggregationSpec::Make(schema, cell.group_cols,
                                            cell.aggs);
  EXPECT_TRUE(spec.ok()) << cell.name;
  return std::move(spec).value();
}

class SimdDifferentialTest : public ::testing::Test {
 protected:
  static constexpr int kRows = 1500;
  static constexpr int kGroups = 211;
  SimdDifferentialTest()
      : schema_(TestSchema()), rows_(MakeRows(schema_, kRows, kGroups)) {}

  Schema schema_;
  std::vector<uint8_t> rows_;
};

TEST_F(SimdDifferentialTest, DispatchedMatchesForcedScalarInMemory) {
  for (const Cell& cell : Matrix()) {
    const AggregationSpec spec = MakeCellSpec(&schema_, cell);
    const std::vector<uint8_t> vec =
        RunProjected(spec, rows_, kRows, /*max_entries=*/100'000, 0);
    ScopedForceScalar force;
    const std::vector<uint8_t> sca =
        RunProjected(spec, rows_, kRows, /*max_entries=*/100'000, 0);
    EXPECT_EQ(vec, sca) << cell.name;
  }
}

TEST_F(SimdDifferentialTest, DispatchedMatchesForcedScalarWithSpill) {
  // A tiny table bound forces overflow spilling and recursive repasses,
  // so the stop/overflow classification lanes are exercised too.
  for (const Cell& cell : Matrix()) {
    const AggregationSpec spec = MakeCellSpec(&schema_, cell);
    const std::vector<uint8_t> vec =
        RunProjected(spec, rows_, kRows, /*max_entries=*/64, 0);
    ScopedForceScalar force;
    const std::vector<uint8_t> sca =
        RunProjected(spec, rows_, kRows, /*max_entries=*/64, 0);
    EXPECT_EQ(vec, sca) << cell.name;
  }
}

TEST_F(SimdDifferentialTest, PartialMergePathMatchesForcedScalar) {
  for (const Cell& cell : Matrix()) {
    const AggregationSpec spec = MakeCellSpec(&schema_, cell);
    const std::vector<uint8_t> vec =
        RunPartials(spec, rows_, kRows, /*max_entries=*/100'000, 0);
    ScopedForceScalar force;
    const std::vector<uint8_t> sca =
        RunPartials(spec, rows_, kRows, /*max_entries=*/100'000, 0);
    EXPECT_EQ(vec, sca) << cell.name;
  }
}

TEST_F(SimdDifferentialTest, ClassifyProbeMatchesStreamingBitIdentically) {
  // The forced classify probe reorders nothing and resolves lanes in
  // record order, so against the default streaming loop every cell must
  // match byte for byte — table state AND emit order. Cells with 16/24
  // byte keys fall back to streaming even under the force (the
  // classifier is 8-byte-key only), which must also be a no-op.
  for (const Cell& cell : Matrix()) {
    const AggregationSpec spec = MakeCellSpec(&schema_, cell);
    const std::vector<uint8_t> stream =
        RunProjected(spec, rows_, kRows, /*max_entries=*/100'000, 0);
    const std::vector<uint8_t> stream_p =
        RunPartials(spec, rows_, kRows, /*max_entries=*/100'000, 0);
    ScopedForceClassify force;
    EXPECT_EQ(stream,
              RunProjected(spec, rows_, kRows, /*max_entries=*/100'000, 0))
        << cell.name;
    EXPECT_EQ(stream_p,
              RunPartials(spec, rows_, kRows, /*max_entries=*/100'000, 0))
        << cell.name;
  }
}

TEST_F(SimdDifferentialTest, ClassifyStopAtFullMatchesStreaming) {
  // A 64-slot table under classify: the stop-at-full lane precision and
  // the overflow hand-off must agree with the streaming loop exactly.
  for (const Cell& cell : Matrix()) {
    const AggregationSpec spec = MakeCellSpec(&schema_, cell);
    const std::vector<uint8_t> stream =
        RunProjected(spec, rows_, kRows, /*max_entries=*/64, 0);
    ScopedForceClassify force;
    EXPECT_EQ(stream,
              RunProjected(spec, rows_, kRows, /*max_entries=*/64, 0))
        << cell.name;
  }
}

TEST_F(SimdDifferentialTest, RadixOnMatchesRadixOffBitIdentically) {
  // When the groups fit the table — the only regime the auto policy
  // engages in — radix pre-partitioning reorders the physical upserts
  // but must not change a single emitted byte.
  for (const Cell& cell : Matrix()) {
    const AggregationSpec spec = MakeCellSpec(&schema_, cell);
    const std::vector<uint8_t> off =
        RunProjected(spec, rows_, kRows, /*max_entries=*/100'000, 0);
    for (int partitions : {2, 8}) {
      const std::vector<uint8_t> on =
          RunProjected(spec, rows_, kRows, /*max_entries=*/100'000,
                       partitions);
      EXPECT_EQ(off, on) << cell.name << " P=" << partitions;
    }
  }
}

TEST_F(SimdDifferentialTest, RadixOverflowPreservesResultMultiset) {
  // Forced radix on a table too small for the groups: which keys win
  // slots differs from hash-direct (partition drain order vs arrival
  // order), but the final (key, state) multiset must be identical.
  for (const Cell& cell : Matrix()) {
    const AggregationSpec spec = MakeCellSpec(&schema_, cell);
    const size_t width =
        static_cast<size_t>(spec.key_width() + spec.state_width());
    const std::vector<uint8_t> off =
        RunProjected(spec, rows_, kRows, /*max_entries=*/64, 0);
    const std::vector<uint8_t> on =
        RunProjected(spec, rows_, kRows, /*max_entries=*/64, 8);
    EXPECT_EQ(SortedRecords(off, width), SortedRecords(on, width))
        << cell.name;
  }
}

TEST_F(SimdDifferentialTest, RadixPartialMergeMatchesRadixOff) {
  for (const Cell& cell : Matrix()) {
    const AggregationSpec spec = MakeCellSpec(&schema_, cell);
    const std::vector<uint8_t> off =
        RunPartials(spec, rows_, kRows, /*max_entries=*/100'000, 0);
    const std::vector<uint8_t> on =
        RunPartials(spec, rows_, kRows, /*max_entries=*/100'000, 4);
    EXPECT_EQ(off, on) << cell.name;
  }
}

TEST_F(SimdDifferentialTest, ScalarRadixCrossProduct) {
  // The two features compose: a forced-scalar radix run must equal the
  // dispatched hash-direct baseline byte for byte when groups fit, and
  // as a multiset through spill overflow.
  const Cell cell = Matrix()[0];  // count+sum int64, 8-byte key
  const AggregationSpec spec = MakeCellSpec(&schema_, cell);
  const std::vector<uint8_t> base =
      RunProjected(spec, rows_, kRows, /*max_entries=*/100'000, 0);
  const std::vector<uint8_t> base_small =
      RunProjected(spec, rows_, kRows, /*max_entries=*/64, 0);
  ScopedForceScalar force;
  EXPECT_EQ(base,
            RunProjected(spec, rows_, kRows, /*max_entries=*/100'000, 8));
  const size_t width =
      static_cast<size_t>(spec.key_width() + spec.state_width());
  EXPECT_EQ(SortedRecords(base_small, width),
            SortedRecords(RunProjected(spec, rows_, kRows,
                                       /*max_entries=*/64, 8),
                          width));
}

}  // namespace
}  // namespace adaptagg
