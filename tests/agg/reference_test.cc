#include "agg/reference.h"

#include <gtest/gtest.h>

#include <cstring>

#include "workload/generator.h"

namespace adaptagg {
namespace {

ResultSet MakeSet(const Schema& schema,
                  std::vector<std::vector<Value>> rows) {
  ResultSet out;
  out.schema = schema;
  for (const auto& vals : rows) {
    TupleBuffer t(&out.schema);
    for (size_t i = 0; i < vals.size(); ++i) {
      t.SetValue(static_cast<int>(i), vals[i]);
    }
    out.rows.emplace_back(t.data(), t.data() + t.size());
  }
  return out;
}

TEST(ResultSetsEqual, OrderInsensitive) {
  Schema schema({{"k", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}});
  ResultSet a = MakeSet(schema, {{Value(int64_t{1}), Value(int64_t{10})},
                                 {Value(int64_t{2}), Value(int64_t{20})}});
  ResultSet b = MakeSet(schema, {{Value(int64_t{2}), Value(int64_t{20})},
                                 {Value(int64_t{1}), Value(int64_t{10})}});
  EXPECT_TRUE(ResultSetsEqual(a, b));
}

TEST(ResultSetsEqual, DetectsRowCountAndValueDifferences) {
  Schema schema({{"k", DataType::kInt64, 8}});
  ResultSet a = MakeSet(schema, {{Value(int64_t{1})}});
  ResultSet b = MakeSet(schema, {{Value(int64_t{1})}, {Value(int64_t{2})}});
  EXPECT_FALSE(ResultSetsEqual(a, b));
  ResultSet c = MakeSet(schema, {{Value(int64_t{3})}});
  EXPECT_FALSE(ResultSetsEqual(a, c));
}

TEST(ResultSetsEqual, SchemaMismatchFails) {
  Schema s1({{"k", DataType::kInt64, 8}});
  Schema s2({{"x", DataType::kInt64, 8}});
  ResultSet a = MakeSet(s1, {{Value(int64_t{1})}});
  ResultSet b = MakeSet(s2, {{Value(int64_t{1})}});
  EXPECT_FALSE(ResultSetsEqual(a, b));
}

TEST(ResultSetsEqual, DoubleToleranceIsRelative) {
  Schema schema({{"k", DataType::kInt64, 8}, {"d", DataType::kDouble, 8}});
  ResultSet a = MakeSet(schema, {{Value(int64_t{1}), Value(1e12)}});
  // Differ by 1.0 absolute but only 1e-12 relative: equal under 1e-9.
  ResultSet b = MakeSet(schema, {{Value(int64_t{1}), Value(1e12 + 1.0)}});
  EXPECT_TRUE(ResultSetsEqual(a, b, 1e-9));
  EXPECT_FALSE(ResultSetsEqual(a, b, 1e-14));
  // A genuinely different double fails.
  ResultSet c = MakeSet(schema, {{Value(int64_t{1}), Value(2e12)}});
  EXPECT_FALSE(ResultSetsEqual(a, c, 1e-9));
}

TEST(ResultSet, SortAndRowAccess) {
  Schema schema({{"k", DataType::kInt64, 8}});
  ResultSet a = MakeSet(schema, {{Value(int64_t{300})},
                                 {Value(int64_t{5})},
                                 {Value(int64_t{40})}});
  a.Sort();
  EXPECT_EQ(a.num_rows(), 3);
  // Bytewise sort of little-endian int64 is not numeric order, but it is
  // deterministic; verify all three rows survive and are readable.
  int64_t sum = 0;
  for (int64_t i = 0; i < a.num_rows(); ++i) sum += a.row(i).GetInt64(0);
  EXPECT_EQ(sum, 345);
}

TEST(ReferenceAggregate, MatchesHandComputedTotals) {
  WorkloadSpec wspec;
  wspec.num_nodes = 2;
  wspec.num_tuples = 600;
  wspec.num_groups = 3;
  wspec.distribution = GroupDistribution::kSequential;
  auto rel = GenerateRelation(wspec);
  ASSERT_TRUE(rel.ok());
  auto spec = MakeBenchQuery(&rel->schema());
  ASSERT_TRUE(spec.ok());
  auto ref = ReferenceAggregate(*spec, *rel);
  ASSERT_TRUE(ref.ok());
  ASSERT_EQ(ref->num_rows(), 3);
  int64_t total_count = 0;
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ref->row(i).GetInt64(1), 200);  // exact count per group
    total_count += ref->row(i).GetInt64(1);
  }
  EXPECT_EQ(total_count, 600);
}

}  // namespace
}  // namespace adaptagg
