#include "obs/histogram.h"

#include <gtest/gtest.h>

namespace adaptagg {
namespace {

TEST(HistogramSpec, ExponentialLayout) {
  HistogramSpec spec = HistogramSpec::Exponential(64, 2.0, 4);
  ASSERT_EQ(spec.edges.size(), 4u);
  EXPECT_EQ(spec.edges[0], 64);
  EXPECT_EQ(spec.edges[1], 128);
  EXPECT_EQ(spec.edges[2], 256);
  EXPECT_EQ(spec.edges[3], 512);
  EXPECT_EQ(spec.num_buckets(), 5);
}

TEST(HistogramSpec, LinearLayout) {
  HistogramSpec spec = HistogramSpec::Linear(10, 5);
  ASSERT_EQ(spec.edges.size(), 5u);
  EXPECT_EQ(spec.edges.front(), 10);
  EXPECT_EQ(spec.edges.back(), 50);
  EXPECT_EQ(spec.num_buckets(), 6);
}

TEST(HistogramSpec, BucketEdgesAreInclusiveUpperBounds) {
  HistogramSpec spec = HistogramSpec::Linear(10, 3);  // edges 10, 20, 30
  EXPECT_EQ(spec.BucketOf(-5), 0);
  EXPECT_EQ(spec.BucketOf(0), 0);
  EXPECT_EQ(spec.BucketOf(9), 0);
  EXPECT_EQ(spec.BucketOf(10), 0);  // v <= edge: boundary stays below
  EXPECT_EQ(spec.BucketOf(11), 1);
  EXPECT_EQ(spec.BucketOf(20), 1);
  EXPECT_EQ(spec.BucketOf(21), 2);
  EXPECT_EQ(spec.BucketOf(30), 2);
  EXPECT_EQ(spec.BucketOf(31), 3);  // overflow bucket
  EXPECT_EQ(spec.BucketOf(1'000'000), 3);
}

TEST(HistogramSpec, BucketLabels) {
  HistogramSpec spec = HistogramSpec::Linear(10, 2);  // edges 10, 20
  EXPECT_EQ(spec.BucketLabel(0), "<=10");
  EXPECT_EQ(spec.BucketLabel(1), "<=20");
  EXPECT_EQ(spec.BucketLabel(2), ">20");
}

}  // namespace
}  // namespace adaptagg
