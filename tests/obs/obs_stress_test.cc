#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metric_registry.h"

namespace adaptagg {
namespace {

// Hammers one registry from several writer threads while a reader takes
// snapshots mid-flight. Run under TSan (build-tsan) this proves the
// update paths and Snapshot are race-free; in any build it proves no
// update is lost once the writers join.
TEST(ObsStress, ConcurrentUpdatesDuringSnapshot) {
#if !defined(ADAPTAGG_OBS_DISABLED)
  static constexpr int kThreads = 4;
  static constexpr int kOpsPerThread = 50'000;

  MetricRegistry reg;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, t] {
      // Each thread registers its own handles — registration while
      // other threads update is part of what is being stressed.
      Counter c = reg.counter("stress.count");
      Gauge g = reg.gauge("stress.depth");
      Histogram h =
          reg.histogram("stress.sizes", HistogramSpec::Exponential(
                                            /*start=*/8, 2.0, /*count=*/8));
      for (int i = 0; i < kOpsPerThread; ++i) {
        c.Increment();
        g.UpdateMax(t * kOpsPerThread + i);
        h.Observe(i % 3000);
      }
    });
  }

  std::thread reader([&reg, &stop] {
    int64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      MetricsSnapshot snap = reg.Snapshot();
      const int64_t now = snap.Value("stress.count");
      // Counter totals observed mid-run never go backwards.
      EXPECT_GE(now, last);
      last = now;
      const MetricsSnapshot::Entry* h = snap.Find("stress.sizes");
      if (h != nullptr) {
        int64_t bucket_sum = 0;
        for (int64_t b : h->bucket_counts) bucket_sum += b;
        // Buckets and the total are updated by separate relaxed ops and
        // read at different instants of the scan, so a mid-run snapshot
        // may see them out of step by however many observations landed
        // in between — only the range is bounded mid-flight.
        constexpr int64_t kTotal =
            static_cast<int64_t>(kThreads) * kOpsPerThread;
        EXPECT_GE(bucket_sum, 0);
        EXPECT_LE(bucket_sum, kTotal);
        EXPECT_GE(h->value, 0);
        EXPECT_LE(h->value, kTotal);
      }
    }
  });

  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  MetricsSnapshot final_snap = reg.Snapshot();
  EXPECT_EQ(final_snap.Value("stress.count"),
            static_cast<int64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(final_snap.Value("stress.depth"),
            static_cast<int64_t>(kThreads - 1) * kOpsPerThread +
                (kOpsPerThread - 1));
  const MetricsSnapshot::Entry* h = final_snap.Find("stress.sizes");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->value, static_cast<int64_t>(kThreads) * kOpsPerThread);
  int64_t bucket_sum = 0;
  for (int64_t b : h->bucket_counts) bucket_sum += b;
  EXPECT_EQ(bucket_sum, h->value);
#else
  GTEST_SKIP() << "observability compiled out (ADAPTAGG_OBS_DISABLED)";
#endif
}

// The serving layer's metric flow: per-session registries are updated
// by node worker threads while a finisher thread snapshots each shard
// and folds the shards together with MetricsSnapshot::Merge — and the
// service's own registry is snapshot concurrently by Metrics() callers.
// Merge itself only touches plain value snapshots (no shared state), so
// the concurrency contract is exactly "Snapshot may race updates"; this
// test pins that contract down under TSan the way FinishSession uses it.
TEST(ObsStress, SnapshotAndMergeRaceSessionUpdates) {
#if !defined(ADAPTAGG_OBS_DISABLED)
  static constexpr int kShards = 3;
  static constexpr int kOpsPerShard = 20'000;

  std::vector<std::unique_ptr<MetricRegistry>> shards;
  for (int i = 0; i < kShards; ++i) {
    shards.push_back(std::make_unique<MetricRegistry>());
  }
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < kShards; ++t) {
    writers.emplace_back([&shards, t] {
      Counter c = shards[static_cast<size_t>(t)]->counter("merge.count");
      Gauge g = shards[static_cast<size_t>(t)]->gauge("merge.peak");
      for (int i = 0; i < kOpsPerShard; ++i) {
        c.Increment();
        g.UpdateMax(i);
      }
    });
  }

  // The "finisher": repeatedly snapshots every live shard and merges the
  // shards into one view, mid-update.
  std::thread merger([&shards, &stop] {
    int64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      MetricsSnapshot merged;
      for (const auto& shard : shards) merged.Merge(shard->Snapshot());
      const int64_t now = merged.Value("merge.count");
      EXPECT_GE(now, last);  // merged counters never run backwards
      EXPECT_LE(now, int64_t{kShards} * kOpsPerShard);
      last = now;
    }
  });

  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  merger.join();

  MetricsSnapshot final_view;
  for (const auto& shard : shards) final_view.Merge(shard->Snapshot());
  EXPECT_EQ(final_view.Value("merge.count"),
            int64_t{kShards} * kOpsPerShard);
  EXPECT_EQ(final_view.Value("merge.peak"), kOpsPerShard - 1);
#else
  GTEST_SKIP() << "observability compiled out (ADAPTAGG_OBS_DISABLED)";
#endif
}

}  // namespace
}  // namespace adaptagg
