#include "obs/metric_registry.h"

#include <gtest/gtest.h>

#include "obs/metrics_export.h"

namespace adaptagg {
namespace {

#if !defined(ADAPTAGG_OBS_DISABLED)

TEST(MetricRegistry, CountersAccumulateAndSnapshot) {
  MetricRegistry reg;
  Counter c = reg.counter("a.count");
  c.Increment();
  c.Add(41);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Value("a.count"), 42);
  EXPECT_EQ(snap.Value("missing"), 0);
  ASSERT_NE(snap.Find("a.count"), nullptr);
  EXPECT_EQ(snap.Find("a.count")->kind, MetricKind::kCounter);
}

TEST(MetricRegistry, ReRegistrationSharesTheCell) {
  MetricRegistry reg;
  Counter c1 = reg.counter("shared");
  Counter c2 = reg.counter("shared");
  c1.Add(2);
  c2.Add(3);
  EXPECT_EQ(reg.Snapshot().Value("shared"), 5);
  EXPECT_TRUE(reg.registration_errors().empty());
}

TEST(MetricRegistry, KindMismatchYieldsDeadHandleNotACrash) {
  MetricRegistry reg;
  Counter c = reg.counter("name");
  Gauge g = reg.gauge("name");  // same name, different kind
  c.Add(7);
  g.Set(99);  // dead handle: ignored
  EXPECT_EQ(reg.Snapshot().Value("name"), 7);
  EXPECT_FALSE(reg.registration_errors().empty());
}

TEST(MetricRegistry, DisabledRegistryIgnoresEverything) {
  MetricRegistry reg(/*enabled=*/false);
  Counter c = reg.counter("c");
  Gauge g = reg.gauge("g");
  Histogram h = reg.histogram("h", HistogramSpec::Linear(10, 2));
  c.Add(5);
  g.UpdateMax(5);
  h.Observe(5);
  EXPECT_TRUE(reg.Snapshot().empty());
}

TEST(MetricRegistry, SnapshotIsNameSortedRegardlessOfRegistration) {
  MetricRegistry reg;
  reg.counter("zzz").Increment();
  reg.counter("aaa").Increment();
  reg.counter("mmm").Increment();
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "aaa");
  EXPECT_EQ(snap.entries[1].name, "mmm");
  EXPECT_EQ(snap.entries[2].name, "zzz");
}

TEST(MetricRegistry, GaugeSetAndUpdateMax) {
  MetricRegistry reg;
  Gauge g = reg.gauge("depth");
  g.Set(10);
  g.UpdateMax(4);  // lower: keeps 10
  EXPECT_EQ(reg.Snapshot().Value("depth"), 10);
  g.UpdateMax(25);
  EXPECT_EQ(reg.Snapshot().Value("depth"), 25);
}

TEST(MetricRegistry, HistogramObservationsLandInBuckets) {
  MetricRegistry reg;
  Histogram h =
      reg.histogram("sizes", HistogramSpec::Linear(10, 2));  // 10, 20, >
  h.Observe(3);
  h.Observe(10);
  h.Observe(15);
  h.Observe(1000);
  const MetricsSnapshot snap = reg.Snapshot();
  const MetricsSnapshot::Entry* e = snap.Find("sizes");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, MetricKind::kHistogram);
  EXPECT_EQ(e->value, 4);  // observation count
  ASSERT_EQ(e->bucket_counts.size(), 3u);
  EXPECT_EQ(e->bucket_counts[0], 2);
  EXPECT_EQ(e->bucket_counts[1], 1);
  EXPECT_EQ(e->bucket_counts[2], 1);
}

MetricsSnapshot ShardSnapshot(int64_t count, int64_t depth,
                              int64_t small_obs, int64_t big_obs) {
  MetricRegistry reg;
  Counter c = reg.counter("records");
  Gauge g = reg.gauge("depth");
  Histogram h = reg.histogram("sizes", HistogramSpec::Linear(10, 2));
  c.Add(count);
  g.Set(depth);
  for (int64_t i = 0; i < small_obs; ++i) h.Observe(5);
  for (int64_t i = 0; i < big_obs; ++i) h.Observe(500);
  return reg.Snapshot();
}

TEST(MetricsSnapshot, MergeSemanticsPerKind) {
  MetricsSnapshot a = ShardSnapshot(10, 3, 1, 0);
  MetricsSnapshot b = ShardSnapshot(32, 7, 0, 2);
  a.Merge(b);
  EXPECT_EQ(a.Value("records"), 42);  // counters sum
  EXPECT_EQ(a.Value("depth"), 7);    // gauges keep the max
  const MetricsSnapshot::Entry* e = a.Find("sizes");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value, 3);  // histogram totals sum
  EXPECT_EQ(e->bucket_counts[0], 1);
  EXPECT_EQ(e->bucket_counts[2], 2);  // overflow buckets sum
}

TEST(MetricsSnapshot, MergeCopiesEntriesOnlyPresentInOther) {
  MetricsSnapshot a;
  MetricsSnapshot b = ShardSnapshot(5, 1, 0, 0);
  a.Merge(b);
  EXPECT_EQ(a.Value("records"), 5);
  EXPECT_EQ(a.entries.size(), b.entries.size());
}

TEST(MetricsSnapshot, MergeIsCommutativeAndAssociative) {
  MetricsSnapshot shards[3] = {ShardSnapshot(1, 9, 1, 0),
                               ShardSnapshot(2, 4, 0, 1),
                               ShardSnapshot(4, 6, 2, 2)};
  // (a + b) + c vs a + (b + c) vs c + b + a — all must agree.
  MetricsSnapshot left = shards[0];
  left.Merge(shards[1]);
  left.Merge(shards[2]);
  MetricsSnapshot bc = shards[1];
  bc.Merge(shards[2]);
  MetricsSnapshot right = shards[0];
  right.Merge(bc);
  MetricsSnapshot rev = shards[2];
  rev.Merge(shards[1]);
  rev.Merge(shards[0]);
  EXPECT_EQ(MetricsToJson(left), MetricsToJson(right));
  EXPECT_EQ(MetricsToJson(left), MetricsToJson(rev));
}

TEST(MetricsExport, JsonAndTextRenderings) {
  MetricsSnapshot snap = ShardSnapshot(10, 3, 1, 1);
  const std::string one_line = MetricsToJson(snap);
  EXPECT_EQ(one_line.find('\n'), std::string::npos);
  EXPECT_NE(one_line.find("\"records\": 10"), std::string::npos);
  EXPECT_NE(one_line.find("\"buckets\": "), std::string::npos);
  const std::string text = MetricsToText(snap);
  EXPECT_NE(text.find("records 10"), std::string::npos);
  EXPECT_NE(text.find("<=10:"), std::string::npos);
}

#else

TEST(MetricRegistry, CompiledOutHandlesAreInertNoOps) {
  MetricRegistry reg;
  Counter c = reg.counter("c");
  c.Add(5);
  // With ADAPTAGG_OBS_DISABLED the update path compiles to nothing; the
  // registry still snapshots (the cell exists, its value stays 0).
  EXPECT_EQ(reg.Snapshot().Value("c"), 0);
}

#endif  // !defined(ADAPTAGG_OBS_DISABLED)

}  // namespace
}  // namespace adaptagg
