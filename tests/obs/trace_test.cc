#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace_export.h"
#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

/// Minimal recursive-descent JSON syntax checker — enough to prove the
/// exporter emits well-formed JSON without depending on a parser
/// library. Returns true iff `s` is exactly one valid JSON value.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const std::string& lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

/// Golden run: 2 nodes, enough groups that A-2P switches, full tracing.
RunResult TracedRun() {
  WorkloadSpec wspec;
  wspec.num_nodes = 2;
  wspec.num_tuples = 4'000;
  wspec.num_groups = 1'500;
  wspec.distribution = GroupDistribution::kSequential;
  auto rel = GenerateRelation(wspec);
  EXPECT_TRUE(rel.ok());
  auto spec = MakeBenchQuery(&rel->schema());
  EXPECT_TRUE(spec.ok());
  Cluster cluster(SmallClusterParams(2, 4'000, /*M=*/256));
  AlgorithmOptions opts;
  opts.obs = ObsConfig::Full();
  return cluster.Run(*MakeAlgorithm(AlgorithmKind::kAdaptiveTwoPhase),
                     *spec, *rel, opts);
}

#if !defined(ADAPTAGG_OBS_DISABLED)

TEST(ChromeTrace, ExportIsValidJson) {
  RunResult run = TracedRun();
  ASSERT_OK(run.status);
  ASSERT_FALSE(run.trace_events.empty());
  const std::string json = ChromeTraceJson(run.trace_events, run.num_nodes);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeTrace, OneNamedTrackPerNode) {
  RunResult run = TracedRun();
  ASSERT_OK(run.status);
  const std::string json = ChromeTraceJson(run.trace_events, run.num_nodes);
  ASSERT_EQ(run.num_nodes, 2);
  // Every node gets a thread_name metadata event naming its track.
  EXPECT_NE(json.find("\"node 0\""), std::string::npos);
  EXPECT_NE(json.find("\"node 1\""), std::string::npos);
  // And every span's tid is a real node id.
  std::vector<bool> node_has_span(static_cast<size_t>(run.num_nodes));
  for (const TraceEvent& e : run.trace_events) {
    ASSERT_GE(e.node_id, 0);
    ASSERT_LT(e.node_id, run.num_nodes);
    if (e.kind == TraceEvent::Kind::kSpan) {
      node_has_span[static_cast<size_t>(e.node_id)] = true;
    }
  }
  for (int node = 0; node < run.num_nodes; ++node) {
    EXPECT_TRUE(node_has_span[static_cast<size_t>(node)])
        << "node " << node << " recorded no spans";
  }
}

TEST(ChromeTrace, PhaseSpansDoNotOverlapWithinANode) {
  RunResult run = TracedRun();
  ASSERT_OK(run.status);
  std::map<int, std::vector<const TraceEvent*>> spans_by_node;
  for (const TraceEvent& e : run.trace_events) {
    if (e.kind == TraceEvent::Kind::kSpan) {
      EXPECT_GE(e.sim_end_s, e.sim_begin_s) << e.name;
      spans_by_node[e.node_id].push_back(&e);
    }
  }
  for (auto& [node, spans] : spans_by_node) {
    std::sort(spans.begin(), spans.end(),
              [](const TraceEvent* a, const TraceEvent* b) {
                return a->sim_begin_s < b->sim_begin_s;
              });
    for (size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i]->sim_begin_s + 1e-12, spans[i - 1]->sim_end_s)
          << "node " << node << ": " << spans[i - 1]->name
          << " overlaps " << spans[i]->name;
    }
  }
}

TEST(ChromeTrace, SpanTotalsTrackTheModeledRunTime) {
  RunResult run = TracedRun();
  ASSERT_OK(run.status);
  // Acceptance criterion: per-track span durations must sum to the
  // node's modeled clock within 1% — the spans tile the whole run.
  std::vector<double> span_total(static_cast<size_t>(run.num_nodes), 0.0);
  for (const TraceEvent& e : run.trace_events) {
    if (e.kind == TraceEvent::Kind::kSpan) {
      span_total[static_cast<size_t>(e.node_id)] += e.sim_duration_s();
    }
  }
  for (int node = 0; node < run.num_nodes; ++node) {
    const double clock = run.clocks[static_cast<size_t>(node)].now();
    const double spans = span_total[static_cast<size_t>(node)];
    ASSERT_GT(clock, 0.0);
    EXPECT_NEAR(spans, clock, 0.01 * clock)
        << "node " << node << ": spans sum to " << spans
        << " s but the node clock reads " << clock << " s";
  }
}

TEST(ChromeTrace, AdaptiveSwitchInstantCarriesDecisionInputs) {
  RunResult run = TracedRun();
  ASSERT_OK(run.status);
  // 1500 groups against M=256 forces the A-2P overflow switch on both
  // nodes; the instant must carry the observed cardinality inputs.
  int switch_instants = 0;
  for (const TraceEvent& e : run.trace_events) {
    if (e.kind != TraceEvent::Kind::kInstant) continue;
    if (e.name != "switch.overflow") continue;
    ++switch_instants;
    std::map<std::string, int64_t> args(e.args.begin(), e.args.end());
    EXPECT_GT(args["at_tuple"], 0);
    EXPECT_EQ(args["table_limit"], 256);
    EXPECT_GE(args["table_size"], args["table_limit"]);
  }
  EXPECT_EQ(switch_instants, 2);
}

TEST(ChromeTrace, PhaseCountersAgreeWithSpans) {
  RunResult run = TracedRun();
  ASSERT_OK(run.status);
  // The registry's phase.<name>.sim_us counters are derived from the
  // same spans the trace carries; totals must agree (to rounding).
  std::map<std::string, double> span_us;
  std::map<std::string, int64_t> span_count;
  for (const TraceEvent& e : run.trace_events) {
    if (e.kind != TraceEvent::Kind::kSpan) continue;
    span_us[e.name] += e.sim_duration_s() * 1e6;
    ++span_count[e.name];
  }
  ASSERT_FALSE(span_us.empty());
  for (const auto& [name, us] : span_us) {
    EXPECT_NEAR(
        static_cast<double>(run.metrics.Value("phase." + name + ".sim_us")),
        us, 1.0 * static_cast<double>(span_count[name]))
        << "phase " << name;
    EXPECT_EQ(run.metrics.Value("phase." + name + ".count"),
              span_count[name]);
  }
}

TEST(ChromeTrace, WriteChromeTraceRoundTripsThroughDisk) {
  RunResult run = TracedRun();
  ASSERT_OK(run.status);
  const std::string path =
      ::testing::TempDir() + "/adaptagg_trace_test.json";
  ASSERT_OK(WriteChromeTrace(run.trace_events, run.num_nodes, path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, got);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_TRUE(JsonChecker(contents).Valid());
}

TEST(ChromeTrace, TracesOffByDefaultKeepsRunResultLean) {
  WorkloadSpec wspec;
  wspec.num_nodes = 2;
  wspec.num_tuples = 2'000;
  wspec.num_groups = 50;
  auto rel = GenerateRelation(wspec);
  ASSERT_TRUE(rel.ok());
  auto spec = MakeBenchQuery(&rel->schema());
  ASSERT_TRUE(spec.ok());
  Cluster cluster(SmallClusterParams(2, 2'000));
  RunResult run = cluster.Run(*MakeAlgorithm(AlgorithmKind::kTwoPhase),
                              *spec, *rel);  // default options
  ASSERT_OK(run.status);
  EXPECT_TRUE(run.trace_events.empty());
  EXPECT_FALSE(run.metrics.empty());  // metrics still on by default
}

#else

TEST(ChromeTrace, DisabledBuildProducesNoEvents) {
  RunResult run = TracedRun();
  ASSERT_OK(run.status);
  EXPECT_TRUE(run.trace_events.empty());
  const std::string json = ChromeTraceJson(run.trace_events, run.num_nodes);
  EXPECT_TRUE(JsonChecker(json).Valid());
}

#endif  // !defined(ADAPTAGG_OBS_DISABLED)

}  // namespace
}  // namespace adaptagg
