#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include "cluster/exchange.h"
#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

/// A minimal algorithm: each node counts its local tuples and sends the
/// count to node 0 in a raw page; node 0 verifies the grand total.
class CountingAlgorithm : public Algorithm {
 public:
  std::string name() const override { return "counting"; }

  Status RunNode(NodeContext& ctx) const override {
    LocalScanner scan(&ctx);
    int64_t local = 0;
    for (TupleView t = scan.Next(); t.valid(); t = scan.Next()) ++local;

    Message m;
    m.type = MessageType::kRawPage;
    m.phase = 42;
    m.payload.resize(8);
    std::memcpy(m.payload.data(), &local, 8);
    ADAPTAGG_RETURN_IF_ERROR(ctx.Send(0, std::move(m)));

    if (ctx.node_id() == 0) {
      int64_t total = 0;
      for (int i = 0; i < ctx.num_nodes(); ++i) {
        ADAPTAGG_ASSIGN_OR_RETURN(Message got, ctx.RecvWithDeadline(30.0));
        int64_t v;
        std::memcpy(&v, got.payload.data(), 8);
        total += v;
      }
      if (total != ctx.local_partition()->num_tuples() * ctx.num_nodes()) {
        // Uniform round-robin load in this test: every node equal.
        return Status::Internal("bad total " + std::to_string(total));
      }
    }
    return Status::OK();
  }
};

/// Fails on one node to exercise error propagation.
class FailingAlgorithm : public Algorithm {
 public:
  std::string name() const override { return "failing"; }
  Status RunNode(NodeContext& ctx) const override {
    if (ctx.node_id() == 2) {
      return Status::Internal("injected failure");
    }
    return Status::OK();
  }
};

TEST(Cluster, RunsCustomAlgorithm) {
  WorkloadSpec wspec;
  wspec.num_nodes = 4;
  wspec.num_tuples = 4'000;
  wspec.num_groups = 10;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  Cluster cluster(SmallClusterParams(4, 4'000));
  RunResult run = cluster.Run(CountingAlgorithm(), spec, rel);
  ASSERT_OK(run.status);
  for (const auto& s : run.node_stats) {
    EXPECT_EQ(s.tuples_scanned, 1'000);
  }
  EXPECT_GT(run.wall_time_s, 0);
}

TEST(Cluster, NodeErrorsPropagateWithNodeId) {
  WorkloadSpec wspec;
  wspec.num_nodes = 4;
  wspec.num_tuples = 100;
  wspec.num_groups = 5;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  Cluster cluster(SmallClusterParams(4, 100));
  RunResult run = cluster.Run(FailingAlgorithm(), spec, rel);
  EXPECT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kInternal);
  EXPECT_NE(run.status.message().find("node 2"), std::string::npos);
}

TEST(NodeContext, StashReordersAheadOfNetwork) {
  auto mesh = MakeInprocMesh(1);
  SystemParams params = SmallClusterParams(1, 10);
  NetworkModel net(params);
  Schema schema = MakeBenchSchema(32);
  auto spec = MakeBenchQuery(&schema);
  ASSERT_TRUE(spec.ok());
  AlgorithmOptions opts;
  NodeContext ctx(0, params, *spec, opts, nullptr, nullptr, mesh[0].get(),
                  &net);

  Message net_msg;
  net_msg.type = MessageType::kRawPage;
  ASSERT_OK(ctx.Send(0, net_msg));

  Message stashed;
  stashed.type = MessageType::kControl;
  ctx.Stash(std::move(stashed));

  auto first = ctx.RecvWithDeadline(5.0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->type, MessageType::kControl);
  auto second = ctx.RecvWithDeadline(5.0);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->type, MessageType::kRawPage);
}

TEST(NodeContext, ResolvedDefaultsFollowParams) {
  auto mesh = MakeInprocMesh(1);
  SystemParams params = SmallClusterParams(4, 10, /*M=*/777);
  params.num_nodes = 1;
  NetworkModel net(params);
  Schema schema = MakeBenchSchema(32);
  auto spec = MakeBenchQuery(&schema);
  ASSERT_TRUE(spec.ok());
  AlgorithmOptions opts;
  NodeContext ctx(0, params, *spec, opts, nullptr, nullptr, mesh[0].get(),
                  &net);
  EXPECT_EQ(ctx.max_hash_entries(), 777);
  EXPECT_EQ(ctx.crossover_threshold(), 100);  // 100 * N, N = 1
  EXPECT_EQ(ctx.few_groups_threshold(), 100);

  AlgorithmOptions custom;
  custom.max_hash_entries = 5;
  custom.crossover_threshold = 9;
  custom.few_groups_threshold = 3;
  NodeContext ctx2(0, params, *spec, custom, nullptr, nullptr,
                   mesh[0].get(), &net);
  EXPECT_EQ(ctx2.max_hash_entries(), 5);
  EXPECT_EQ(ctx2.crossover_threshold(), 9);
  EXPECT_EQ(ctx2.few_groups_threshold(), 3);
}

}  // namespace
}  // namespace adaptagg
