#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

// Whole-substrate concurrency stress: every paper algorithm drives the
// node threads, the exchange layer, the network cost model, and the
// per-node CostClocks at once. Under TSan this is the proof that the
// run/exchange substrate is race-free end to end; uninstrumented it
// doubles as a repeated-run correctness check against the reference
// oracle.

TEST(ClusterStress, AllAlgorithmsRepeatedRuns) {
  WorkloadSpec wspec;
  wspec.num_nodes = 4;
  wspec.num_tuples = 4'000;
  wspec.num_groups = 600;  // above M=256: overflow and switch paths fire
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec, MakeBenchQuery(&rel.schema()));
  ASSERT_OK_AND_ASSIGN(ResultSet expected, ReferenceAggregate(spec, rel));

  SystemParams params = SmallClusterParams(4, wspec.num_tuples, 256);
  AlgorithmOptions opts;
  opts.init_seg = 500;
  for (int round = 0; round < 2; ++round) {
    for (AlgorithmKind kind : AllAlgorithms()) {
      SCOPED_TRACE(AlgorithmKindToString(kind) + " round " +
                   std::to_string(round));
      Cluster cluster(params);
      RunResult run = cluster.Run(*MakeAlgorithm(kind), spec, rel, opts);
      ASSERT_OK(run.status);
      EXPECT_TRUE(ResultSetsEqual(run.results, expected));
      // Clocks are written by node threads and read here after the join:
      // the documented single-owner lifecycle of CostClock.
      ASSERT_EQ(run.clocks.size(), 4u);
      for (const CostClock& c : run.clocks) {
        EXPECT_GE(c.now(), 0.0);
        EXPECT_GE(c.cpu_s(), 0.0);
      }
    }
  }
}

// Two independent clusters running concurrently on separate thread pools
// must not share any mutable state (globals, statics, caches). TSan
// flags any accidental cross-cluster coupling.
TEST(ClusterStress, ConcurrentIndependentClusters) {
  WorkloadSpec wspec;
  wspec.num_nodes = 3;
  wspec.num_tuples = 3'000;
  wspec.num_groups = 100;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel_a, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel_b, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec_a,
                       MakeBenchQuery(&rel_a.schema()));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec_b,
                       MakeBenchQuery(&rel_b.schema()));
  ASSERT_OK_AND_ASSIGN(ResultSet expected,
                       ReferenceAggregate(spec_a, rel_a));

  SystemParams params = SmallClusterParams(3, wspec.num_tuples);
  auto run_one = [&params](const AggregationSpec& spec,
                           PartitionedRelation& rel, AlgorithmKind kind,
                           RunResult* out) {
    Cluster cluster(params);
    *out = cluster.Run(*MakeAlgorithm(kind), spec, rel);
  };
  RunResult run_a;
  RunResult run_b;
  std::thread ta(run_one, std::cref(spec_a), std::ref(rel_a),
                 AlgorithmKind::kTwoPhase, &run_a);
  std::thread tb(run_one, std::cref(spec_b), std::ref(rel_b),
                 AlgorithmKind::kRepartitioning, &run_b);
  ta.join();
  tb.join();
  ASSERT_OK(run_a.status);
  ASSERT_OK(run_b.status);
  EXPECT_TRUE(ResultSetsEqual(run_a.results, expected));
  EXPECT_TRUE(ResultSetsEqual(run_b.results, expected));
}

// A failing node aborts its peers while their exchanges are mid-stream;
// repeated to shake out lifetime bugs in the abort broadcast path.
TEST(ClusterStress, RepeatedAbortPropagation) {
  class FailAtNodeOne : public Algorithm {
   public:
    std::string name() const override { return "fail-at-1"; }
    Status RunNode(NodeContext& ctx) const override {
      if (ctx.node_id() == 1) {
        return Status::Internal("injected stress failure");
      }
      // Peers wait for traffic that will never fully arrive; the abort
      // broadcast must wake them out of the blocking receive.
      while (true) {
        ADAPTAGG_ASSIGN_OR_RETURN(Message msg, ctx.RecvWithDeadline(30.0));
        if (msg.type == MessageType::kAbort) {
          return Status::Internal("aborted by peer " +
                                  std::to_string(msg.from));
        }
      }
    }
  };

  WorkloadSpec wspec;
  wspec.num_nodes = 4;
  wspec.num_tuples = 400;
  wspec.num_groups = 10;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec, MakeBenchQuery(&rel.schema()));
  Cluster cluster(SmallClusterParams(4, wspec.num_tuples));
  for (int round = 0; round < 5; ++round) {
    RunResult run = cluster.Run(FailAtNodeOne(), spec, rel);
    ASSERT_FALSE(run.status.ok());
    EXPECT_NE(run.status.message().find("injected stress failure"),
              std::string::npos)
        << run.status.ToString();
  }
}

// The TCP transport under the full engine: connect, run, tear down, in a
// loop, with adaptive algorithms that reorder traffic mid-run.
TEST(ClusterStress, TcpMeshRunTeardownLoop) {
  WorkloadSpec wspec;
  wspec.num_nodes = 3;
  wspec.num_tuples = 1'500;
  wspec.num_groups = 300;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec, MakeBenchQuery(&rel.schema()));
  ASSERT_OK_AND_ASSIGN(ResultSet expected, ReferenceAggregate(spec, rel));

  SystemParams params = SmallClusterParams(3, wspec.num_tuples, 256);
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    Cluster cluster(params);
    cluster.set_transport_factory(
        [](int n) { return MakeTcpMesh(n, 43'900); });
    RunResult run = cluster.Run(
        *MakeAlgorithm(AlgorithmKind::kAdaptiveTwoPhase), spec, rel);
    ASSERT_OK(run.status);
    EXPECT_TRUE(ResultSetsEqual(run.results, expected));
  }
}

}  // namespace
}  // namespace adaptagg
