#include "cluster/gather_sink.h"

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace adaptagg {
namespace {

TEST(GatherSinkTest, AppendCopiesRowBytes) {
  GatherSink sink;
  std::vector<uint8_t> row = {1, 2, 3, 4};
  sink.Append(row.data(), row.size());
  row.assign(row.size(), 0);  // the sink must have taken a copy
  std::vector<std::vector<uint8_t>> rows = sink.TakeRows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<uint8_t>{1, 2, 3, 4}));
}

TEST(GatherSinkTest, TakeRowsDrainsTheSink) {
  GatherSink sink;
  const uint8_t row[] = {7};
  sink.Append(row, 1);
  EXPECT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.TakeRows().size(), 1u);
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_TRUE(sink.TakeRows().empty());
}

TEST(GatherSinkTest, ConcurrentAppendsAllArrive) {
  GatherSink sink;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const uint8_t row[2] = {static_cast<uint8_t>(t),
                                static_cast<uint8_t>(i % 251)};
        sink.Append(row, 2);
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<std::vector<uint8_t>> rows = sink.TakeRows();
  ASSERT_EQ(rows.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  // Every thread's rows all arrived intact.
  std::vector<int> per_thread(kThreads, 0);
  for (const auto& r : rows) {
    ASSERT_EQ(r.size(), 2u);
    ASSERT_LT(r[0], kThreads);
    ++per_thread[r[0]];
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_thread[t], kPerThread);
  }
}

}  // namespace
}  // namespace adaptagg
