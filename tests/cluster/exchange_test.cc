#include "cluster/exchange.h"

#include <gtest/gtest.h>

#include <cstring>

#include <set>

#include "common/random.h"

namespace adaptagg {
namespace {

TEST(DestOfKeyHash, InRangeAndStable) {
  for (int n : {1, 2, 7, 32}) {
    for (uint64_t h = 0; h < 1000; ++h) {
      int d = DestOfKeyHash(h, n);
      EXPECT_GE(d, 0);
      EXPECT_LT(d, n);
      EXPECT_EQ(d, DestOfKeyHash(h, n));
    }
  }
}

TEST(DestOfKeyHash, SpreadsOverNodes) {
  constexpr int kNodes = 8;
  int counts[kNodes] = {};
  for (uint64_t h = 0; h < 80'000; ++h) {
    // Feed realistic table hashes, not raw integers.
    ++counts[DestOfKeyHash(SplitMix64(h), kNodes)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 80'000 / kNodes * 0.9);
    EXPECT_LT(c, 80'000 / kNodes * 1.1);
  }
}

TEST(DestOfKeyHash, IndependentOfTableProbeBits) {
  // Keys that collide in the table's low bits must still spread across
  // nodes (the exchange uses an independent mix).
  constexpr int kNodes = 4;
  std::set<int> dests;
  for (uint64_t i = 0; i < 64; ++i) {
    uint64_t h = (i << 32) | 0x1234;  // identical low 16 bits
    dests.insert(DestOfKeyHash(h, kNodes));
  }
  EXPECT_EQ(dests.size(), static_cast<size_t>(kNodes));
}

// Exchange paging is validated end-to-end in the cluster tests; here the
// page decode helper gets direct coverage.
TEST(ForEachRecordInPage, DecodesBuilderPages) {
  const int kMsgPage = 2048;
  const int kWidth = 24;
  PageBuilder builder(kMsgPage, kWidth);
  uint8_t rec[24];
  for (int i = 0; i < 10; ++i) {
    std::memset(rec, i, sizeof(rec));
    builder.Append(rec);
  }
  Message m;
  m.payload = builder.Finish();

  int count = 0;
  ForEachRecordInPage(m, kWidth, kMsgPage, [&](const uint8_t* r) {
    EXPECT_EQ(r[0], count);
    EXPECT_EQ(r[23], count);
    ++count;
  });
  EXPECT_EQ(count, 10);
}

TEST(ForEachRecordInPage, MessagePageCapacityMatchesModel) {
  // The §5 implementation blocks messages into 2 KB pages; a 16-byte
  // projected record should pack 127 per page (4-byte header).
  EXPECT_EQ(PageBuilder::Capacity(2048, 16), 127);
  EXPECT_EQ(PageBuilder::Capacity(2048, 24), 85);
}

}  // namespace
}  // namespace adaptagg
