#include "cluster/exchange.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <set>
#include <vector>

#include "cluster/node_context.h"
#include "common/random.h"
#include "net/transport.h"
#include "test_util.h"
#include "workload/generator.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

TEST(DestOfKeyHash, InRangeAndStable) {
  for (int n : {1, 2, 7, 32}) {
    for (uint64_t h = 0; h < 1000; ++h) {
      int d = DestOfKeyHash(h, n);
      EXPECT_GE(d, 0);
      EXPECT_LT(d, n);
      EXPECT_EQ(d, DestOfKeyHash(h, n));
    }
  }
}

TEST(DestOfKeyHash, SpreadsOverNodes) {
  constexpr int kNodes = 8;
  int counts[kNodes] = {};
  for (uint64_t h = 0; h < 80'000; ++h) {
    // Feed realistic table hashes, not raw integers.
    ++counts[DestOfKeyHash(SplitMix64(h), kNodes)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 80'000 / kNodes * 0.9);
    EXPECT_LT(c, 80'000 / kNodes * 1.1);
  }
}

TEST(DestOfKeyHash, IndependentOfTableProbeBits) {
  // Keys that collide in the table's low bits must still spread across
  // nodes (the exchange uses an independent mix).
  constexpr int kNodes = 4;
  std::set<int> dests;
  for (uint64_t i = 0; i < 64; ++i) {
    uint64_t h = (i << 32) | 0x1234;  // identical low 16 bits
    dests.insert(DestOfKeyHash(h, kNodes));
  }
  EXPECT_EQ(dests.size(), static_cast<size_t>(kNodes));
}

// Exchange paging is validated end-to-end in the cluster tests; here the
// page decode helper gets direct coverage.
TEST(ForEachRecordInPage, DecodesBuilderPages) {
  const int kMsgPage = 2048;
  const int kWidth = 24;
  PageBuilder builder(kMsgPage, kWidth);
  uint8_t rec[24];
  for (int i = 0; i < 10; ++i) {
    std::memset(rec, i, sizeof(rec));
    builder.Append(rec);
  }
  Message m;
  m.payload = builder.Finish();

  int count = 0;
  ASSERT_TRUE(ForEachRecordInPage(m, kWidth, kMsgPage,
                                  [&](const uint8_t* r) {
                                    EXPECT_EQ(r[0], count);
                                    EXPECT_EQ(r[23], count);
                                    ++count;
                                  })
                  .ok());
  EXPECT_EQ(count, 10);
}

TEST(ForEachRecordInPage, MessagePageCapacityMatchesModel) {
  // The §5 implementation blocks messages into 2 KB pages; a 16-byte
  // projected record should pack 127 per page (4-byte header).
  EXPECT_EQ(PageBuilder::Capacity(2048, 16), 127);
  EXPECT_EQ(PageBuilder::Capacity(2048, 24), 85);
}

/// Differential harness for the batched scatter: node 0 routes records
/// through an Exchange into a 4-node in-process mesh; destination inboxes
/// are drained directly so the per-destination record streams can be
/// compared byte-for-byte between the scalar and batched senders.
class ExchangeScatterTest : public ::testing::Test {
 protected:
  static constexpr int kNodes = 4;
  static constexpr uint32_t kPhase = 1;

  ExchangeScatterTest()
      : mesh_(MakeInprocMesh(kNodes)),
        params_(SmallClusterParams(kNodes, 10'000)),
        net_(params_),
        schema_(MakeBenchSchema(32)) {
    auto spec = MakeBenchQuery(&schema_);
    EXPECT_TRUE(spec.ok());
    spec_ = std::make_unique<AggregationSpec>(std::move(spec).value());
    ctx_ = std::make_unique<NodeContext>(0, params_, *spec_, options_,
                                         nullptr, nullptr, mesh_[0].get(),
                                         &net_);
  }

  int width() const { return spec_->projected_width(); }

  /// Deterministic projected records with heavy key collisions.
  std::vector<uint8_t> MakeProjected(int n, uint64_t seed) {
    Prng prng(seed);
    std::vector<uint8_t> recs(static_cast<size_t>(n) * width());
    for (int i = 0; i < n; ++i) {
      uint8_t* rec = recs.data() + static_cast<size_t>(i) * width();
      int64_t g = static_cast<int64_t>(prng.NextBelow(57));
      int64_t v = static_cast<int64_t>(prng.NextBelow(1000));
      std::memcpy(rec, &g, 8);
      std::memcpy(rec + 8, &v, 8);
    }
    return recs;
  }

  struct DestTraffic {
    std::vector<uint8_t> records;
    int pages = 0;
  };

  /// Empties every destination inbox, checking each page's wire
  /// invariants: trimmed payload, full-page network charge, valid header.
  /// Drained payload buffers go back to the sender's pool.
  std::vector<DestTraffic> DrainAll() {
    std::vector<DestTraffic> out(kNodes);
    for (int d = 0; d < kNodes; ++d) {
      while (std::optional<Message> m = mesh_[d]->TryRecv()) {
        EXPECT_EQ(m->type, MessageType::kRawPage);
        EXPECT_EQ(m->charged_bytes,
                  static_cast<uint32_t>(params_.message_page_bytes));
        auto count = ValidateWirePage(m->payload.data(), m->payload.size(),
                                      params_.message_page_bytes, width());
        if (!count.ok()) {
          ADD_FAILURE() << count.status().ToString();
          return out;
        }
        EXPECT_EQ(m->payload.size(),
                  sizeof(uint32_t) +
                      static_cast<size_t>(*count) * width());
        EXPECT_LE(m->payload.size(),
                  static_cast<size_t>(params_.message_page_bytes));
        const uint8_t* recs = m->payload.data() + sizeof(uint32_t);
        out[d].records.insert(out[d].records.end(), recs,
                              recs + static_cast<size_t>(*count) * width());
        ++out[d].pages;
        ctx_->ReleasePageBuffer(std::move(m->payload));
      }
    }
    return out;
  }

  int64_t MetricValue(const std::string& name) {
    for (const auto& e : ctx_->obs().Snapshot().entries) {
      if (e.name == name) return e.value;
    }
    return -1;
  }

  std::vector<std::unique_ptr<Transport>> mesh_;
  SystemParams params_;
  NetworkModel net_;
  Schema schema_;
  std::unique_ptr<AggregationSpec> spec_;
  AlgorithmOptions options_;
  std::unique_ptr<NodeContext> ctx_;
};

TEST_F(ExchangeScatterTest, AddBatchMatchesScalarPerDestinationStreams) {
  const int n = 1000;
  std::vector<uint8_t> recs = MakeProjected(n, 123);
  TupleBatch batch(spec_.get());

  // Scalar reference: one AddRecord per tuple, routed by key hash.
  Exchange scalar(ctx_.get(), MessageType::kRawPage, width(), kPhase);
  for (int off = 0; off < n; off += kBatchWidth) {
    const int run = std::min(n - off, kBatchWidth);
    batch.BindView(recs.data() + static_cast<size_t>(off) * width(),
                   width(), run);
    batch.ComputeHashes();
    for (int i = 0; i < run; ++i) {
      ASSERT_OK(scalar.AddRecord(DestOfKeyHash(batch.hash(i), kNodes),
                                 batch.record(i)));
    }
  }
  ASSERT_OK(scalar.FlushAll());
  EXPECT_EQ(scalar.records_sent(), n);
  std::vector<DestTraffic> want = DrainAll();

  // Batched: the scatter kernel must produce identical streams.
  Exchange batched(ctx_.get(), MessageType::kRawPage, width(), kPhase);
  for (int off = 0; off < n; off += kBatchWidth) {
    const int run = std::min(n - off, kBatchWidth);
    batch.BindView(recs.data() + static_cast<size_t>(off) * width(),
                   width(), run);
    batch.ComputeHashes();
    ASSERT_OK(batched.AddBatch(batch));
  }
  ASSERT_OK(batched.FlushAll());
  EXPECT_EQ(batched.records_sent(), n);
  std::vector<DestTraffic> got = DrainAll();

  int64_t total = 0;
  for (int d = 0; d < kNodes; ++d) {
    SCOPED_TRACE("dest=" + std::to_string(d));
    EXPECT_EQ(got[d].pages, want[d].pages);
    ASSERT_EQ(got[d].records.size(), want[d].records.size());
    EXPECT_EQ(std::memcmp(got[d].records.data(), want[d].records.data(),
                          got[d].records.size()),
              0)
        << "per-destination record stream diverged";
    total += static_cast<int64_t>(got[d].records.size()) / width();
  }
  EXPECT_EQ(total, n);
}

TEST_F(ExchangeScatterTest, AddIndicesMatchesScalarSubset) {
  const int n = 700;
  std::vector<uint8_t> recs = MakeProjected(n, 321);
  TupleBatch batch(spec_.get());

  // Scalar reference over a gappy subset (every index not divisible by
  // 3), mimicking the Graefe overflow-forwarding pattern.
  Exchange scalar(ctx_.get(), MessageType::kRawPage, width(), kPhase);
  int subset_size = 0;
  for (int off = 0; off < n; off += kBatchWidth) {
    const int run = std::min(n - off, kBatchWidth);
    batch.BindView(recs.data() + static_cast<size_t>(off) * width(),
                   width(), run);
    batch.ComputeHashes();
    for (int i = 0; i < run; ++i) {
      if (i % 3 == 0) continue;
      ++subset_size;
      ASSERT_OK(scalar.AddRecord(DestOfKeyHash(batch.hash(i), kNodes),
                                 batch.record(i)));
    }
  }
  ASSERT_OK(scalar.FlushAll());
  std::vector<DestTraffic> want = DrainAll();

  Exchange batched(ctx_.get(), MessageType::kRawPage, width(), kPhase);
  for (int off = 0; off < n; off += kBatchWidth) {
    const int run = std::min(n - off, kBatchWidth);
    batch.BindView(recs.data() + static_cast<size_t>(off) * width(),
                   width(), run);
    batch.ComputeHashes();
    std::vector<int> idx;
    for (int i = 0; i < run; ++i) {
      if (i % 3 != 0) idx.push_back(i);
    }
    ASSERT_OK(batched.AddIndices(batch, idx.data(),
                                 static_cast<int>(idx.size())));
  }
  ASSERT_OK(batched.FlushAll());
  EXPECT_EQ(batched.records_sent(), subset_size);
  std::vector<DestTraffic> got = DrainAll();

  for (int d = 0; d < kNodes; ++d) {
    SCOPED_TRACE("dest=" + std::to_string(d));
    ASSERT_EQ(got[d].records.size(), want[d].records.size());
    EXPECT_EQ(std::memcmp(got[d].records.data(), want[d].records.data(),
                          got[d].records.size()),
              0);
  }
}

TEST_F(ExchangeScatterTest, ObservesSkewAndRecyclesPayloadBuffers) {
  const int n = 4 * kBatchWidth;
  std::vector<uint8_t> recs = MakeProjected(n, 77);
  TupleBatch batch(spec_.get());

  Exchange ex(ctx_.get(), MessageType::kRawPage, width(), kPhase);
  for (int off = 0; off < n; off += kBatchWidth) {
    batch.BindView(recs.data() + static_cast<size_t>(off) * width(),
                   width(), kBatchWidth);
    batch.ComputeHashes();
    ASSERT_OK(ex.AddBatch(batch));
  }
  ASSERT_OK(ex.FlushAll());

  // Every page of the first pass allocated fresh (pool starts dry), and
  // the flush observed one pages-per-destination sample per active dest.
  const int64_t allocs = MetricValue("net.page_pool_allocs");
  EXPECT_GT(allocs, 0);
  EXPECT_EQ(MetricValue("net.page_pool_hits"), 0);
  EXPECT_EQ(MetricValue("net.exchange_pages_per_dest"), kNodes);

  // Draining returns the payload buffers to the pool; a second pass must
  // recycle them instead of allocating.
  DrainAll();
  for (int off = 0; off < n; off += kBatchWidth) {
    batch.BindView(recs.data() + static_cast<size_t>(off) * width(),
                   width(), kBatchWidth);
    batch.ComputeHashes();
    ASSERT_OK(ex.AddBatch(batch));
  }
  ASSERT_OK(ex.FlushAll());
  EXPECT_GT(MetricValue("net.page_pool_hits"), 0);
  EXPECT_EQ(MetricValue("net.page_pool_allocs"), allocs);
}

TEST_F(ExchangeScatterTest, PartialPagesAreTrimmedOnTheWire) {
  Exchange ex(ctx_.get(), MessageType::kRawPage, width(), kPhase);
  std::vector<uint8_t> rec(static_cast<size_t>(width()), 0xAB);
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(ex.AddRecord(2, rec.data()));
  }
  ASSERT_OK(ex.FlushAll());
  std::optional<Message> m = mesh_[2]->TryRecv();
  ASSERT_TRUE(m.has_value());
  // 3 records of a 127-capacity page: the wire carries 52 bytes, the
  // cost model still charges the full 2 KB page.
  EXPECT_EQ(m->payload.size(),
            sizeof(uint32_t) + 3 * static_cast<size_t>(width()));
  EXPECT_EQ(m->charged_bytes,
            static_cast<uint32_t>(params_.message_page_bytes));
  EXPECT_FALSE(mesh_[2]->TryRecv().has_value());
}

}  // namespace
}  // namespace adaptagg
