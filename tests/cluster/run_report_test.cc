#include "cluster/run_report.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

RunResult MakeRun() {
  WorkloadSpec wspec;
  wspec.num_nodes = 2;
  wspec.num_tuples = 4'000;
  wspec.num_groups = 1'500;  // > M: adaptive switch + spill counters move
  wspec.distribution = GroupDistribution::kSequential;  // exactly 1500 hit
  auto rel = GenerateRelation(wspec);
  EXPECT_TRUE(rel.ok());
  auto spec = MakeBenchQuery(&rel->schema());
  EXPECT_TRUE(spec.ok());
  Cluster cluster(SmallClusterParams(2, 4'000, /*M=*/256));
  return cluster.Run(*MakeAlgorithm(AlgorithmKind::kAdaptiveTwoPhase),
                     *spec, *rel);
}

TEST(RunReport, ContainsHeadlineNumbersAndPerNodeLines) {
  RunResult run = MakeRun();
  ASSERT_OK(run.status);
  std::string report = RunReport(run);
  EXPECT_NE(report.find("status: OK"), std::string::npos);
  EXPECT_NE(report.find("modeled time:"), std::string::npos);
  EXPECT_NE(report.find("result rows: 1500"), std::string::npos);
  EXPECT_NE(report.find("node 0:"), std::string::npos);
  EXPECT_NE(report.find("node 1:"), std::string::npos);
  EXPECT_NE(report.find("[switched]"), std::string::npos);
#if !defined(ADAPTAGG_OBS_DISABLED)
  // With obs on, the report includes network totals and phase lines
  // derived from the merged metric snapshot.
  EXPECT_NE(report.find("network:"), std::string::npos);
  EXPECT_NE(report.find("peak channel depth"), std::string::npos);
  EXPECT_NE(report.find("phase scan:"), std::string::npos);
  EXPECT_NE(report.find("phase merge:"), std::string::npos);
#endif
}

TEST(RunReport, SummaryLineParsesKeyFields) {
  RunResult run = MakeRun();
  ASSERT_OK(run.status);
  std::string line = RunSummaryLine(run);
  EXPECT_NE(line.find("sim="), std::string::npos);
  EXPECT_NE(line.find("rows=1500"), std::string::npos);
  EXPECT_NE(line.find("switched=2"), std::string::npos);
  EXPECT_NE(line.find("bytes="), std::string::npos);
  EXPECT_NE(line.find("chdepth="), std::string::npos);
#if !defined(ADAPTAGG_OBS_DISABLED)
  // A-2P on 2 nodes ships partials, so bytes-on-wire must be nonzero.
  EXPECT_EQ(line.find("bytes=0 "), std::string::npos);
#endif
  // One line only.
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(RunReport, ReportsErrorStatus) {
  RunResult run;
  run.status = Status::IOError("disk on fire");
  std::string report = RunReport(run);
  EXPECT_NE(report.find("IOError"), std::string::npos);
  EXPECT_NE(report.find("disk on fire"), std::string::npos);
}

}  // namespace
}  // namespace adaptagg
