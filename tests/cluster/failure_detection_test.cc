#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "cluster/cluster.h"
#include "net/fault.h"
#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

/// Regression shape for the pre-detector deadlock: every node enters the
/// merge phase expecting a message from node 1, but node 1 returns
/// without sending anything. Before failure detection this wedged the
/// run forever inside a blocking receive; now the wait must abort with
/// a status naming the silent peer and the stuck phase.
class SilentPeerAlgorithm : public Algorithm {
 public:
  std::string name() const override { return "silent-peer"; }

  Status RunNode(NodeContext& ctx) const override {
    ADAPTAGG_RETURN_IF_ERROR(ctx.EnterPhase("merge"));
    if (ctx.node_id() == 1) {
      return Status::OK();  // exits without the message peers expect
    }
    ADAPTAGG_ASSIGN_OR_RETURN(
        Message msg, ctx.AwaitMessage([](int p) { return p == 1; }));
    if (msg.type == MessageType::kAbort) {
      return Status::Internal("aborted by peer node " +
                              std::to_string(msg.from));
    }
    return Status::Internal("unexpected message");
  }
};

TEST(FailureDetection, SilentPeerDetectedInsteadOfDeadlock) {
  WorkloadSpec wspec;
  wspec.num_nodes = 3;
  wspec.num_tuples = 300;
  wspec.num_groups = 10;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));

  AlgorithmOptions opts;
  opts.failure.enabled = true;
  opts.failure.recv_idle_timeout_s = 1.0;

  Cluster cluster(SmallClusterParams(3, wspec.num_tuples));
  const auto start = std::chrono::steady_clock::now();
  RunResult run = cluster.Run(SilentPeerAlgorithm(), spec, rel, opts);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();

  ASSERT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kDeadlineExceeded)
      << run.status.ToString();
  // The diagnostic names the silent peer and the phase that was stuck.
  EXPECT_NE(run.status.message().find("node 1"), std::string::npos)
      << run.status.ToString();
  EXPECT_NE(run.status.message().find("merge"), std::string::npos)
      << run.status.ToString();
  // Detection, not a hang: well inside the 1s timeout plus slack.
  EXPECT_LT(elapsed, 20.0);
}

TEST(FailureDetection, StragglerSurvivesWithHeartbeats) {
  WorkloadSpec wspec;
  wspec.num_nodes = 4;
  wspec.num_tuples = 4'000;
  wspec.num_groups = 50;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  ASSERT_OK_AND_ASSIGN(ResultSet expected, ReferenceAggregate(spec, rel));

  // Node 2 sleeps 0.3s at every poll site while the detector's idle
  // timeout is 1s: the straggler must be kept alive by heartbeats, and
  // the run must still produce correct results.
  AlgorithmOptions opts;
  ASSERT_OK_AND_ASSIGN(opts.fault_plan,
                       FaultPlan::Parse("straggle:node=2,factor=300"));
  opts.failure.enabled = true;
  opts.failure.recv_idle_timeout_s = 1.0;

  Cluster cluster(SmallClusterParams(4, wspec.num_tuples));
  RunResult run = cluster.Run(*MakeAlgorithm(AlgorithmKind::kTwoPhase),
                              spec, rel, opts);
  ASSERT_OK(run.status);
  EXPECT_TRUE(ResultSetsEqual(run.results, expected));
  EXPECT_GT(run.metrics.Value("fault.straggle_sleeps"), 0);
  EXPECT_GT(run.metrics.Value("fault.heartbeats_sent"), 0);
}

/// Records each node's failure-detection arming state from inside a run.
class ArmingProbeAlgorithm : public Algorithm {
 public:
  ArmingProbeAlgorithm(std::atomic<bool>* armed,
                       std::atomic<double>* timeout)
      : armed_(armed), timeout_(timeout) {}

  std::string name() const override { return "arming-probe"; }

  Status RunNode(NodeContext& ctx) const override {
    if (ctx.node_id() == 0) {
      armed_->store(ctx.failure_detection_armed());
      timeout_->store(ctx.recv_idle_timeout_s());
    }
    return Status::OK();
  }

 private:
  std::atomic<bool>* armed_;
  std::atomic<double>* timeout_;
};

TEST(FailureDetection, UnarmedByDefaultArmedByPlanOrFlag) {
  WorkloadSpec wspec;
  wspec.num_nodes = 2;
  wspec.num_tuples = 100;
  wspec.num_groups = 5;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  Cluster cluster(SmallClusterParams(2, wspec.num_tuples));

  std::atomic<bool> armed{false};
  std::atomic<double> timeout{0};
  ArmingProbeAlgorithm probe(&armed, &timeout);

  // Default options: unarmed, with a generous derived idle deadline so
  // fault-free runs behave exactly as before this subsystem existed.
  ASSERT_OK(cluster.Run(probe, spec, rel).status);
  EXPECT_FALSE(armed.load());
  EXPECT_GE(timeout.load(), 60.0);

  // failure.enabled arms detection and tightens the deadline.
  AlgorithmOptions enabled;
  enabled.failure.enabled = true;
  enabled.failure.recv_idle_timeout_s = 7.0;
  ASSERT_OK(cluster.Run(probe, spec, rel, enabled).status);
  EXPECT_TRUE(armed.load());
  EXPECT_DOUBLE_EQ(timeout.load(), 7.0);

  // A non-empty fault plan arms detection on its own.
  AlgorithmOptions with_plan;
  ASSERT_OK_AND_ASSIGN(with_plan.fault_plan,
                       FaultPlan::Parse("delay:from=0,to=1,secs=0.001"));
  ASSERT_OK(cluster.Run(probe, spec, rel, with_plan).status);
  EXPECT_TRUE(armed.load());
}

}  // namespace
}  // namespace adaptagg
