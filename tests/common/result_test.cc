#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace adaptagg {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ValueOrReturnsValueOnSuccess) {
  Result<std::string> r(std::string("hi"));
  EXPECT_EQ(r.value_or("fallback"), "hi");
}

TEST(Result, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(Result, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Result<int> ProduceValue(bool ok) {
  if (!ok) return Status::Internal("boom");
  return 5;
}

Status ConsumeWithMacro(bool ok, int* out) {
  ADAPTAGG_ASSIGN_OR_RETURN(*out, ProduceValue(ok));
  return Status::OK();
}

TEST(Result, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(ConsumeWithMacro(true, &out).ok());
  EXPECT_EQ(out, 5);
  Status st = ConsumeWithMacro(false, &out);
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST(Result, CopyPreservesState) {
  Result<int> good(3);
  Result<int> copy = good;
  EXPECT_TRUE(copy.ok());
  EXPECT_EQ(copy.value(), 3);
  Result<int> bad(Status::IOError("x"));
  Result<int> bad_copy = bad;
  EXPECT_FALSE(bad_copy.ok());
  EXPECT_EQ(bad_copy.status().message(), "x");
}

}  // namespace
}  // namespace adaptagg
