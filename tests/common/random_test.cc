#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace adaptagg {
namespace {

TEST(Prng, DeterministicForSeed) {
  Prng a(123), b(123), c(124);
  bool all_equal = true, any_diff_seed_diff = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    all_equal &= (va == b.Next());
    any_diff_seed_diff |= (va != c.Next());
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed_diff);
}

TEST(Prng, NextBelowInRange) {
  Prng prng(7);
  for (uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(prng.NextBelow(n), n);
    }
  }
}

TEST(Prng, NextBelowCoversDomain) {
  Prng prng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(prng.NextBelow(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Prng, NextBelowRoughlyUniform) {
  Prng prng(13);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100'000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[prng.NextBelow(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(Prng, NextDoubleInUnitInterval) {
  Prng prng(17);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    double d = prng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Prng, ShuffleIsPermutation) {
  Prng prng(19);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> original = v;
  prng.Shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Prng, SampleWithoutReplacementDistinctSortedBounded) {
  Prng prng(23);
  auto sample = prng.SampleWithoutReplacement(1000, 100);
  ASSERT_EQ(sample.size(), 100u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  EXPECT_EQ(std::set<uint64_t>(sample.begin(), sample.end()).size(), 100u);
  for (uint64_t x : sample) EXPECT_LT(x, 1000u);
}

TEST(Prng, SampleWholePopulation) {
  Prng prng(29);
  auto sample = prng.SampleWithoutReplacement(10, 10);
  ASSERT_EQ(sample.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(HashBytes, DeterministicAndSeedSensitive) {
  const char data[] = "hello world, this is a key";
  uint64_t h1 = HashBytes(data, sizeof(data));
  EXPECT_EQ(h1, HashBytes(data, sizeof(data)));
  EXPECT_NE(h1, HashBytes(data, sizeof(data), /*seed=*/1));
  EXPECT_NE(h1, HashBytes(data, sizeof(data) - 1));
}

TEST(HashBytes, LowBitsSpread) {
  // Sequential int64 keys must not collide in the low bits the hash
  // table masks with.
  std::set<uint64_t> low;
  for (int64_t k = 0; k < 4096; ++k) {
    low.insert(HashBytes(&k, sizeof(k)) & 0xFFFF);
  }
  EXPECT_GT(low.size(), 3800u);  // near-perfect spread over 65536 slots
}

TEST(SplitMix64, NotIdentity) {
  EXPECT_NE(SplitMix64(0), 0u);
  EXPECT_NE(SplitMix64(1), 1u);
  EXPECT_NE(SplitMix64(0), SplitMix64(1));
}

}  // namespace
}  // namespace adaptagg
