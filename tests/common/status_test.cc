#include "common/status.h"

#include <gtest/gtest.h>

namespace adaptagg {
namespace {

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_EQ(st, Status::OK());
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    std::string_view name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::OutOfRange("b"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::NotFound("c"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("d"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::ResourceExhausted("e"), StatusCode::kResourceExhausted,
       "ResourceExhausted"},
      {Status::FailedPrecondition("f"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::IOError("g"), StatusCode::kIOError, "IOError"},
      {Status::NetworkError("h"), StatusCode::kNetworkError,
       "NetworkError"},
      {Status::Internal("i"), StatusCode::kInternal, "Internal"},
      {Status::NotImplemented("j"), StatusCode::kNotImplemented,
       "NotImplemented"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(StatusCodeToString(c.code), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
    EXPECT_NE(c.status.ToString().find(c.status.message()),
              std::string::npos);
  }
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Status FailsThenPropagates(bool fail) {
  ADAPTAGG_RETURN_IF_ERROR(fail ? Status::IOError("disk gone")
                                : Status::OK());
  return Status::OK();
}

TEST(Status, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailsThenPropagates(false).ok());
  Status st = FailsThenPropagates(true);
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(st.message(), "disk gone");
}

}  // namespace
}  // namespace adaptagg
