#include "common/mutex.h"

#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace adaptagg {
namespace {

TEST(MutexTest, MutexLockSerializesConcurrentIncrements) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kPerThread);
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  bool acquired = true;
  std::thread other([&] { acquired = mu.TryLock(); });
  other.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();
  std::thread again([&] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  again.join();
  EXPECT_TRUE(acquired);
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    {
      MutexLock lock(&mu);
      ready = true;
    }
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(mu);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVarTest, WaitUntilTimesOutWithoutNotification) {
  Mutex mu;
  CondVar cv;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(20);
  MutexLock lock(&mu);
  while (cv.WaitUntil(mu, deadline)) {
    // Spurious wakeups report "no timeout"; wait them out.
  }
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

TEST(CondVarTest, WaitUntilSeesNotificationBeforeDeadline) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    {
      MutexLock lock(&mu);
      ready = true;
    }
    cv.NotifyAll();
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool saw = false;
  {
    MutexLock lock(&mu);
    while (!ready) {
      if (!cv.WaitUntil(mu, deadline)) break;
    }
    saw = ready;
  }
  producer.join();
  EXPECT_TRUE(saw);
}

}  // namespace
}  // namespace adaptagg
