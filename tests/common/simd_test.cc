#include "common/simd.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"

namespace adaptagg {
namespace simd {
namespace {

constexpr uint64_t kBasis = 1469598103934665603ULL ^ 0x5ca1ab1eULL;
constexpr uint64_t kPrime = 1099511628211ULL;

/// Pins ADAPTAGG_FORCE_SCALAR for one test and restores the prior
/// environment (and the cached dispatch) on destruction.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(const char* value) {
    const char* prev = std::getenv("ADAPTAGG_FORCE_SCALAR");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    if (value != nullptr) {
      setenv("ADAPTAGG_FORCE_SCALAR", value, 1);
    } else {
      unsetenv("ADAPTAGG_FORCE_SCALAR");
    }
    ResetDispatchForTest();
  }
  ~ScopedForceScalar() {
    if (had_prev_) {
      setenv("ADAPTAGG_FORCE_SCALAR", prev_.c_str(), 1);
    } else {
      unsetenv("ADAPTAGG_FORCE_SCALAR");
    }
    ResetDispatchForTest();
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

/// Deterministic pseudo-random record block: `n` records of `stride`
/// bytes whose leading `words * 8` bytes are the key.
std::vector<uint8_t> MakeRecords(int n, int stride, uint64_t seed) {
  std::vector<uint8_t> recs(static_cast<size_t>(n) * stride);
  uint64_t x = seed;
  for (size_t i = 0; i + 8 <= recs.size(); i += 8) {
    x = SplitMix64(x + 0x9e3779b97f4a7c15ULL);
    std::memcpy(recs.data() + i, &x, 8);
  }
  return recs;
}

TEST(SimdDispatch, ResolvesOnceToAStableKind) {
  const DispatchKind kind = ActiveDispatch();
  EXPECT_EQ(ActiveDispatch(), kind);
  const std::string name = DispatchName();
  EXPECT_TRUE(name == "scalar" || name == "avx2" || name == "neon")
      << name;
#if defined(ADAPTAGG_SIMD_HAVE_AVX2)
  if (!ForcedScalar() && __builtin_cpu_supports("avx2")) {
    EXPECT_EQ(kind, DispatchKind::kAvx2);
  }
#endif
}

TEST(SimdDispatch, ForceScalarEnvPinsTheFallback) {
  ScopedForceScalar force("1");
  EXPECT_TRUE(ForcedScalar());
  EXPECT_EQ(ActiveDispatch(), DispatchKind::kScalar);
  EXPECT_STREQ(DispatchName(), "scalar");
}

TEST(SimdDispatch, ZeroAndEmptyDoNotForce) {
  {
    ScopedForceScalar force("0");
    EXPECT_FALSE(ForcedScalar());
  }
  {
    ScopedForceScalar force("");
    EXPECT_FALSE(ForcedScalar());
  }
}

TEST(SimdHash, MatchesHashBytesOnWordKeys) {
  // The dispatched batch hash must be bit-identical to the scalar
  // HashBytes path for every key width that is a multiple of 8.
  for (int words : {1, 2, 3}) {
    const int stride = words * 8 + 8;  // keys plus a trailing value col
    for (int n : {1, 7, 8, 9, 31, 127, 128}) {
      std::vector<uint8_t> recs =
          MakeRecords(n, stride, 0xabcdef01u + static_cast<uint64_t>(n));
      std::vector<uint64_t> got(static_cast<size_t>(n));
      HashKeysFnvWords(recs.data(), stride, words, n, kBasis, kPrime,
                       got.data());
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(got[static_cast<size_t>(i)],
                  HashBytes(recs.data() + static_cast<size_t>(i) * stride,
                            static_cast<size_t>(words) * 8, 0x5ca1ab1eULL))
            << "words=" << words << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdHash, DispatchedMatchesScalarReference) {
  const int words = 2;
  const int stride = 24;
  const int n = 100;
  std::vector<uint8_t> recs = MakeRecords(n, stride, 42);
  std::vector<uint64_t> dispatched(n);
  std::vector<uint64_t> scalar(n);
  HashKeysFnvWords(recs.data(), stride, words, n, kBasis, kPrime,
                   dispatched.data());
  HashKeysFnvWordsScalar(recs.data(), stride, words, n, kBasis, kPrime,
                         scalar.data());
  EXPECT_EQ(dispatched, scalar);
}

TEST(SimdClassify, DispatchedMatchesScalarReference) {
  // A miniature open-addressing layout: 16 buckets over 8-byte-key slots
  // of 24 bytes, covering hit, empty, and collision (wrong-key) lanes.
  constexpr int64_t kSlotWidth = 24;
  constexpr uint64_t kBucketMask = 15;
  std::vector<uint8_t> arena(8 * kSlotWidth);
  std::vector<int64_t> buckets(16, -1);
  std::vector<uint8_t> recs(8 * 16);
  uint64_t hashes[8];
  for (int i = 0; i < 8; ++i) {
    const int64_t key = 1000 + i;
    std::memcpy(recs.data() + i * 16, &key, 8);
    hashes[i] = HashBytes(&key, 8, 0x5ca1ab1eULL);
  }
  // Slot 0..3 hold records 0..3's keys at their home buckets (hits);
  // records 4..5 find empty homes; 6..7 collide with a stranger key.
  for (int i = 0; i < 4; ++i) {
    std::memcpy(arena.data() + i * kSlotWidth, recs.data() + i * 16, 8);
    buckets[hashes[i] & kBucketMask] = i;
  }
  const int64_t stranger = -77;
  for (int i = 6; i < 8; ++i) {
    const int64_t slot = i;
    std::memcpy(arena.data() + slot * kSlotWidth, &stranger, 8);
    buckets[hashes[i] & kBucketMask] = slot;
  }

  Classify8 scalar;
  ProbeClassify8Scalar(buckets.data(), kBucketMask, arena.data(),
                       kSlotWidth, recs.data(), 16, hashes, &scalar);
  Classify8 dispatched;
  ResolveProbeClassify8()(buckets.data(), kBucketMask, arena.data(),
                          kSlotWidth, recs.data(), 16, hashes,
                          &dispatched);

  EXPECT_EQ(dispatched.hit_mask, scalar.hit_mask);
  EXPECT_EQ(dispatched.empty_mask, scalar.empty_mask);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(dispatched.slots[i], scalar.slots[i]) << i;
  }
  // Sanity against the constructed layout (unless home buckets collided
  // by accident, lanes 0-3 hit and 6-7 are ambiguous).
  EXPECT_EQ(scalar.hit_mask & scalar.empty_mask, 0u);
}

TEST(SimdClassify, RandomTablesAgreeLaneForLane) {
  Prng prng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const uint64_t bucket_mask = 63;
    const int64_t slot_width = 16 + 8 * static_cast<int64_t>(trial % 3);
    std::vector<int64_t> buckets(64);
    std::vector<uint8_t> arena(32 * static_cast<size_t>(slot_width));
    for (auto& b : buckets) {
      b = (prng.Next() % 3 == 0) ? -1
                                 : static_cast<int64_t>(prng.Next() % 32);
    }
    for (size_t i = 0; i + 8 <= arena.size(); i += 8) {
      const uint64_t v = prng.Next() % 16;
      std::memcpy(arena.data() + i, &v, 8);
    }
    std::vector<uint8_t> recs(8 * 16);
    uint64_t hashes[8];
    for (int i = 0; i < 8; ++i) {
      const uint64_t key = prng.Next() % 16;
      std::memcpy(recs.data() + i * 16, &key, 8);
      hashes[i] = prng.Next();
    }
    Classify8 a;
    Classify8 b;
    ProbeClassify8Scalar(buckets.data(), bucket_mask, arena.data(),
                         slot_width, recs.data(), 16, hashes, &a);
    ResolveProbeClassify8()(buckets.data(), bucket_mask, arena.data(),
                            slot_width, recs.data(), 16, hashes, &b);
    EXPECT_EQ(a.hit_mask, b.hit_mask) << trial;
    EXPECT_EQ(a.empty_mask, b.empty_mask) << trial;
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(a.slots[i], b.slots[i]) << trial << ":" << i;
    }
  }
}

TEST(SimdArith, AddInt64PairWrapsLikeScalar) {
  uint8_t state[16];
  int64_t a = std::numeric_limits<int64_t>::max();
  int64_t b = -5;
  std::memcpy(state, &a, 8);
  std::memcpy(state + 8, &b, 8);
  AddInt64PairInPlace(state, 1, 7);
  int64_t x;
  int64_t y;
  std::memcpy(&x, state, 8);
  std::memcpy(&y, state + 8, 8);
  EXPECT_EQ(x, std::numeric_limits<int64_t>::min());  // two's-complement
  EXPECT_EQ(y, 2);
}

TEST(SimdArith, AddInt64WordsHandlesOddCounts) {
  for (int words : {1, 2, 3, 5, 8}) {
    std::vector<uint8_t> state(static_cast<size_t>(words) * 8);
    std::vector<uint8_t> other(static_cast<size_t>(words) * 8);
    std::vector<int64_t> expect(static_cast<size_t>(words));
    for (int w = 0; w < words; ++w) {
      const int64_t s = 100 * w - 7;
      const int64_t o = -13 * w + 2;
      std::memcpy(state.data() + w * 8, &s, 8);
      std::memcpy(other.data() + w * 8, &o, 8);
      expect[static_cast<size_t>(w)] = s + o;
    }
    AddInt64Words(state.data(), other.data(), words);
    for (int w = 0; w < words; ++w) {
      int64_t got;
      std::memcpy(&got, state.data() + w * 8, 8);
      EXPECT_EQ(got, expect[static_cast<size_t>(w)]) << words << ":" << w;
    }
  }
}

/// Builds a [extremum][seen] block pair and runs both merge paths.
void CheckMinMaxMerge(int64_t mine, int64_t mine_seen, int64_t theirs,
                      int64_t their_seen, bool is_min, int64_t want,
                      int64_t want_seen) {
  for (const bool dispatched : {false, true}) {
    uint8_t state[16];
    uint8_t other[16];
    std::memcpy(state, &mine, 8);
    std::memcpy(state + 8, &mine_seen, 8);
    std::memcpy(other, &theirs, 8);
    std::memcpy(other + 8, &their_seen, 8);
    const uint8_t min_flag = is_min ? 1 : 0;
    if (dispatched) {
      ResolveMinMaxMerge()(state, other, &min_flag, 1);
    } else {
      MergeMinMaxInt64Scalar(state, other, &min_flag, 1);
    }
    int64_t got;
    int64_t got_seen;
    std::memcpy(&got, state, 8);
    std::memcpy(&got_seen, state + 8, 8);
    EXPECT_EQ(got, want) << (dispatched ? "dispatched" : "scalar");
    EXPECT_EQ(got_seen, want_seen) << (dispatched ? "dispatched" : "scalar");
  }
}

TEST(SimdArith, MinMaxMergeMatchesAggregateOpSemantics) {
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  // Unseen other side: state untouched (even its seen flag).
  CheckMinMaxMerge(5, 1, 999, 0, /*is_min=*/true, 5, 1);
  CheckMinMaxMerge(5, 0, 999, 0, /*is_min=*/false, 5, 0);
  // Plain wins and losses, both directions.
  CheckMinMaxMerge(5, 1, 3, 1, /*is_min=*/true, 3, 1);
  CheckMinMaxMerge(5, 1, 9, 1, /*is_min=*/true, 5, 1);
  CheckMinMaxMerge(5, 1, 9, 1, /*is_min=*/false, 9, 1);
  CheckMinMaxMerge(5, 1, 3, 1, /*is_min=*/false, 5, 1);
  // Equal values keep the existing extremum and still mark seen.
  CheckMinMaxMerge(4, 1, 4, 1, /*is_min=*/true, 4, 1);
  // Sentinel extremes: INT64_MIN/MAX survive the signed compare.
  CheckMinMaxMerge(kMin, 1, 0, 1, /*is_min=*/true, kMin, 1);
  CheckMinMaxMerge(kMax, 1, 0, 1, /*is_min=*/false, kMax, 1);
  CheckMinMaxMerge(0, 1, kMin, 1, /*is_min=*/true, kMin, 1);
  CheckMinMaxMerge(0, 1, kMax, 1, /*is_min=*/false, kMax, 1);
  // An unseen *state* side adopts the other value via the compare
  // (InitState seeds MIN with INT64_MAX / MAX with INT64_MIN, so the
  // sentinel always loses).
  CheckMinMaxMerge(kMax, 0, 7, 1, /*is_min=*/true, 7, 1);
  CheckMinMaxMerge(kMin, 0, 7, 1, /*is_min=*/false, 7, 1);
}

TEST(SimdArith, MinMaxMergeMultiOpBlocks) {
  // Three ops in one block: MIN, MAX, MIN — mixed flags exercise the
  // per-op flag indexing of both paths.
  const uint8_t flags[3] = {1, 0, 1};
  int64_t state_v[6] = {10, 1, 10, 1, 10, 1};
  int64_t other_v[6] = {3, 1, 30, 1, 99, 0};
  uint8_t state[48];
  uint8_t other[48];
  std::memcpy(state, state_v, 48);
  std::memcpy(other, other_v, 48);
  uint8_t state2[48];
  std::memcpy(state2, state, 48);

  MergeMinMaxInt64Scalar(state, other, flags, 3);
  ResolveMinMaxMerge()(state2, other, flags, 3);
  EXPECT_EQ(std::memcmp(state, state2, 48), 0);

  int64_t got[6];
  std::memcpy(got, state, 48);
  EXPECT_EQ(got[0], 3);   // MIN took 3
  EXPECT_EQ(got[2], 30);  // MAX took 30
  EXPECT_EQ(got[4], 10);  // unseen other skipped
  EXPECT_EQ(got[5], 1);
}

TEST(SimdHash, ForcedScalarAgreesWithVectorPath) {
  // Hash a block under the active dispatch, then force scalar and
  // re-hash: byte-identical outputs on any host.
  const int n = 64;
  const int stride = 16;
  std::vector<uint8_t> recs = MakeRecords(n, stride, 99);
  std::vector<uint64_t> vec(n);
  HashKeysFnvWords(recs.data(), stride, 1, n, kBasis, kPrime, vec.data());
  ScopedForceScalar force("yes");
  std::vector<uint64_t> sca(n);
  HashKeysFnvWords(recs.data(), stride, 1, n, kBasis, kPrime, sca.data());
  EXPECT_EQ(vec, sca);
}

}  // namespace
}  // namespace simd
}  // namespace adaptagg
