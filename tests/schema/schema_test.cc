#include "schema/schema.h"

#include <gtest/gtest.h>

namespace adaptagg {
namespace {

Schema ThreeColSchema() {
  return Schema({{"id", DataType::kInt64, 8},
                 {"name", DataType::kBytes, 12},
                 {"score", DataType::kDouble, 8}});
}

TEST(Schema, OffsetsAndWidth) {
  Schema s = ThreeColSchema();
  EXPECT_EQ(s.num_fields(), 3);
  EXPECT_EQ(s.offset(0), 0);
  EXPECT_EQ(s.offset(1), 8);
  EXPECT_EQ(s.offset(2), 20);
  EXPECT_EQ(s.tuple_size(), 28);
}

TEST(Schema, NumericWidthsForced) {
  // A declared width of 3 on an int64 is corrected to 8.
  Schema s({{"x", DataType::kInt64, 3}});
  EXPECT_EQ(s.field(0).width, 8);
  EXPECT_EQ(s.tuple_size(), 8);
}

TEST(Schema, MakeRejectsBadInput) {
  EXPECT_FALSE(Schema::Make({{"", DataType::kInt64, 8}}).ok());
  EXPECT_FALSE(Schema::Make({{"a", DataType::kInt64, 8},
                             {"a", DataType::kDouble, 8}})
                   .ok());
  EXPECT_FALSE(Schema::Make({{"b", DataType::kBytes, 0}}).ok());
  EXPECT_TRUE(Schema::Make({{"a", DataType::kInt64, 8},
                            {"b", DataType::kBytes, 5}})
                  .ok());
}

TEST(Schema, FieldIndex) {
  Schema s = ThreeColSchema();
  auto idx = s.FieldIndex("score");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 2);
  EXPECT_FALSE(s.FieldIndex("missing").ok());
  EXPECT_EQ(s.FieldIndex("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(Schema, Equals) {
  EXPECT_TRUE(ThreeColSchema().Equals(ThreeColSchema()));
  Schema other({{"id", DataType::kInt64, 8}});
  EXPECT_FALSE(ThreeColSchema().Equals(other));
  Schema renamed({{"id2", DataType::kInt64, 8},
                  {"name", DataType::kBytes, 12},
                  {"score", DataType::kDouble, 8}});
  EXPECT_FALSE(ThreeColSchema().Equals(renamed));
  Schema rewidth({{"id", DataType::kInt64, 8},
                  {"name", DataType::kBytes, 13},
                  {"score", DataType::kDouble, 8}});
  EXPECT_FALSE(ThreeColSchema().Equals(rewidth));
}

TEST(Schema, ToStringMentionsFieldsAndSize) {
  std::string str = ThreeColSchema().ToString();
  EXPECT_NE(str.find("id:int64"), std::string::npos);
  EXPECT_NE(str.find("name:bytes(12)"), std::string::npos);
  EXPECT_NE(str.find("28B"), std::string::npos);
}

TEST(DataType, Names) {
  EXPECT_EQ(DataTypeToString(DataType::kInt64), "int64");
  EXPECT_EQ(DataTypeToString(DataType::kDouble), "double");
  EXPECT_EQ(DataTypeToString(DataType::kBytes), "bytes");
  EXPECT_EQ(FixedWidth(DataType::kInt64), 8);
  EXPECT_EQ(FixedWidth(DataType::kDouble), 8);
}

}  // namespace
}  // namespace adaptagg
