#include "schema/tuple.h"

#include <gtest/gtest.h>

namespace adaptagg {
namespace {

Schema TestSchema() {
  return Schema({{"k", DataType::kInt64, 8},
                 {"tag", DataType::kBytes, 4},
                 {"v", DataType::kDouble, 8}});
}

TEST(Tuple, SetGetRoundtrip) {
  Schema s = TestSchema();
  TupleBuffer t(&s);
  t.SetInt64(0, -17);
  t.SetBytes(1, "ab");
  t.SetDouble(2, 2.5);
  TupleView v = t.view();
  EXPECT_EQ(v.GetInt64(0), -17);
  EXPECT_EQ(v.GetBytes(1), std::string("ab\0\0", 4));
  EXPECT_DOUBLE_EQ(v.GetDouble(2), 2.5);
  EXPECT_EQ(v.size(), s.tuple_size());
  EXPECT_TRUE(v.valid());
}

TEST(Tuple, DefaultViewInvalid) {
  TupleView v;
  EXPECT_FALSE(v.valid());
}

TEST(Tuple, BytesTruncatedAndPadded) {
  Schema s = TestSchema();
  TupleBuffer t(&s);
  t.SetBytes(1, "abcdefgh");  // wider than 4
  EXPECT_EQ(t.view().GetBytes(1), "abcd");
  t.SetBytes(1, "x");
  EXPECT_EQ(t.view().GetBytes(1), std::string("x\0\0\0", 4));
}

TEST(Tuple, SetValueTypeChecked) {
  Schema s = TestSchema();
  TupleBuffer t(&s);
  t.SetValue(0, Value(int64_t{5}));
  t.SetValue(1, Value(std::string("zz")));
  t.SetValue(2, Value(1.25));
  EXPECT_EQ(t.view().GetValue(0), Value(int64_t{5}));
  EXPECT_EQ(t.view().GetValue(2), Value(1.25));
}

TEST(Tuple, GetValueMaterializesEachType) {
  Schema s = TestSchema();
  TupleBuffer t(&s);
  t.SetInt64(0, 9);
  t.SetBytes(1, "hi");
  t.SetDouble(2, -0.5);
  EXPECT_TRUE(t.view().GetValue(0).is_int64());
  EXPECT_TRUE(t.view().GetValue(1).is_bytes());
  EXPECT_TRUE(t.view().GetValue(2).is_double());
  std::string str = t.view().ToString();
  EXPECT_NE(str.find('9'), std::string::npos);
}

TEST(Tuple, ExtractKeySingleColumn) {
  Schema s = TestSchema();
  TupleBuffer t(&s);
  t.SetInt64(0, 0x0102030405060708LL);
  std::vector<uint8_t> key;
  ExtractKey(t.view(), {0}, key);
  ASSERT_EQ(key.size(), 8u);
  int64_t back;
  std::memcpy(&back, key.data(), 8);
  EXPECT_EQ(back, 0x0102030405060708LL);
}

TEST(Tuple, ExtractKeyMultiColumnConcatenates) {
  Schema s = TestSchema();
  TupleBuffer t(&s);
  t.SetInt64(0, 1);
  t.SetBytes(1, "abcd");
  std::vector<uint8_t> key;
  ExtractKey(t.view(), {1, 0}, key);  // order matters
  ASSERT_EQ(key.size(), 12u);
  EXPECT_EQ(key[0], 'a');
  EXPECT_EQ(KeyWidth(s, {1, 0}), 12);
  EXPECT_EQ(KeyWidth(s, {0, 1, 2}), 20);
}

TEST(Value, AsDoubleWidensInt) {
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value(0.25).AsDouble(), 0.25);
}

TEST(Value, ToStringAndEquality) {
  EXPECT_EQ(Value(int64_t{12}).ToString(), "12");
  EXPECT_EQ(Value(std::string("s")).ToString(), "s");
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_FALSE(Value(int64_t{1}) == Value(1.0));
}

}  // namespace
}  // namespace adaptagg
