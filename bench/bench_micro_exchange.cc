// Wall-clock microbenchmark of the exchange data plane: the pre-batch
// per-record repartition + merge pipeline against the batched one,
// across group cardinalities and node counts. Both sides start from the
// same hashed scan batches (the PR-2 batch layer); what differs is
// everything from routing to the merge-side upsert:
//
//   scalar: per-record cost charge + stats, per-record page append,
//           full (untrimmed) page payloads allocated per page, and a
//           per-record Status std::function sink into
//           SpillingAggregator::AddProjected on the receive side.
//   batch:  scatter kernel into per-destination builders, trimmed wire
//           pages from the payload pool, zero-copy page views, batched
//           cost charge, and the prefetched AddProjectedBatch merge.
//
// Numbers go to BENCH_micro_exchange.json.

#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "agg/spilling_aggregator.h"
#include "bench_util.h"
#include "cluster/exchange.h"
#include "cluster/node_context.h"
#include "common/random.h"
#include "net/transport.h"
#include "storage/disk.h"

namespace adaptagg {
namespace {

double NowSeconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

constexpr uint32_t kPhase = 1;

/// One benchmark cluster: an in-process mesh with node 0 as the sender
/// and one merge-side spilling aggregator per destination. The same
/// thread plays both roles (send everything, then drain every inbox), so
/// the timing covers the full data plane without scheduler noise.
struct Harness {
  Harness(int nodes, int64_t tuples)
      : mesh(MakeInprocMesh(nodes)),
        params(MakeParams(nodes, tuples)),
        net(params),
        schema({{"g", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}}) {
    auto made = MakeCountSumSpec(&schema, 0, 1);
    if (made.ok()) {
      spec = std::make_unique<AggregationSpec>(std::move(made).value());
      ctx = std::make_unique<NodeContext>(0, params, *spec, options,
                                          nullptr, nullptr, mesh[0].get(),
                                          &net);
    }
  }

  static SystemParams MakeParams(int nodes, int64_t tuples) {
    SystemParams p;
    p.num_nodes = nodes;
    p.num_tuples = tuples;
    p.network = NetworkKind::kHighBandwidth;
    return p;
  }

  std::vector<std::unique_ptr<Transport>> mesh;
  SystemParams params;
  NetworkModel net;
  Schema schema;
  AlgorithmOptions options;
  std::unique_ptr<AggregationSpec> spec;
  std::unique_ptr<NodeContext> ctx;
};

/// One merge-side aggregator per destination (the receive sink the
/// DataReceiver feeds). The tables are bounded above the group count, so
/// neither pipeline spills — this measures the wire + upsert path.
struct MergeSide {
  MergeSide(const Harness& h, int64_t groups) {
    for (int d = 0; d < h.params.num_nodes; ++d) {
      disks.push_back(std::make_unique<SimDisk>(4096));
      aggs.push_back(std::make_unique<SpillingAggregator>(
          h.spec.get(), disks.back().get(), groups + 1));
    }
  }

  int64_t TotalGroups() const {
    int64_t total = 0;
    for (const auto& agg : aggs) total += agg->table().size();
    return total;
  }

  std::vector<std::unique_ptr<SimDisk>> disks;
  std::vector<std::unique_ptr<SpillingAggregator>> aggs;
};

/// The pre-batch exchange: per-record append, and every page ships as a
/// freshly allocated, untrimmed page_size payload (what Finish returns).
struct ScalarExchange {
  ScalarExchange(Harness& h, int width) : h(h), width(width) {
    for (int d = 0; d < h.params.num_nodes; ++d) {
      builders.emplace_back(h.params.message_page_bytes, width);
    }
  }

  Status Add(int dest, const uint8_t* rec) {
    PageBuilder& b = builders[static_cast<size_t>(dest)];
    b.Append(rec);
    if (b.full()) return Send(dest);
    return Status::OK();
  }

  Status Send(int dest) {
    Message msg;
    msg.type = MessageType::kRawPage;
    msg.phase = kPhase;
    msg.payload = builders[static_cast<size_t>(dest)].Finish();
    return h.ctx->Send(dest, std::move(msg));
  }

  Status Flush() {
    for (int d = 0; d < h.params.num_nodes; ++d) {
      if (!builders[static_cast<size_t>(d)].empty()) {
        Status st = Send(d);
        if (!st.ok()) return st;
      }
    }
    return Status::OK();
  }

  Harness& h;
  int width;
  std::vector<PageBuilder> builders;
};

// Both passes poll their inboxes every kPollEvery scan batches — the
// engine's poll-while-scanning pattern — so in-flight pages stay few and
// (on the batched side) payload buffers recycle through the pool.
constexpr int kPollEvery = 8;

/// The pre-batch pipeline over hashed scan batches: route and append one
/// record at a time (per-record cost charge + stats), then decode each
/// received page record-by-record through a Status-returning
/// std::function sink — exactly the shape of the old RecordSink path.
double RunScalarPass(Harness& h, const std::vector<uint8_t>& recs,
                     int64_t tuples, MergeSide& merge) {
  const AggregationSpec& spec = *h.spec;
  const int w = spec.projected_width();
  const int nodes = h.params.num_nodes;
  const double route_cost = h.params.t_d();
  const double raw_cost = h.params.t_r() + h.params.t_a();
  ScalarExchange ex(h, w);
  TupleBatch batch(h.spec.get());

  bool failed = false;
  std::vector<std::function<Status(const uint8_t*)>> sinks;
  for (int d = 0; d < nodes; ++d) {
    SpillingAggregator* agg = merge.aggs[static_cast<size_t>(d)].get();
    sinks.emplace_back(
        [agg](const uint8_t* rec) { return agg->AddProjected(rec); });
  }
  auto drain = [&]() {
    for (int d = 0; d < nodes; ++d) {
      while (std::optional<Message> msg = h.mesh[d]->TryRecv()) {
        Status st = ForEachRecordInPage(
            *msg, w, h.params.message_page_bytes, [&](const uint8_t* rec) {
              h.ctx->clock().AddCpu(raw_cost);
              ++h.ctx->stats().raw_records_received;
              if (!sinks[static_cast<size_t>(d)](rec).ok()) failed = true;
            });
        if (!st.ok()) failed = true;
        // The old path freed every payload; no pooling.
      }
    }
  };

  const double t0 = NowSeconds();
  int64_t chunk = 0;
  for (int64_t off = 0; off < tuples; off += kBatchWidth, ++chunk) {
    const int run =
        static_cast<int>(std::min<int64_t>(tuples - off, kBatchWidth));
    batch.BindView(recs.data() + static_cast<size_t>(off) * w, w, run);
    batch.ComputeHashes();
    for (int i = 0; i < run; ++i) {
      h.ctx->clock().AddCpu(route_cost);
      ++h.ctx->stats().raw_records_sent;
      Status st =
          ex.Add(DestOfKeyHash(batch.hash(i), nodes), batch.record(i));
      if (!st.ok()) return -1;
    }
    if (chunk % kPollEvery == 0) drain();
  }
  if (!ex.Flush().ok()) return -1;
  drain();
  if (failed) return -1;
  return NowSeconds() - t0;
}

/// The batched pipeline: scatter kernel on send (batched cost charge),
/// trimmed pooled pages on the wire, zero-copy page views and the
/// prefetched batch merge on receive.
double RunBatchPass(Harness& h, const std::vector<uint8_t>& recs,
                    int64_t tuples, MergeSide& merge) {
  const AggregationSpec& spec = *h.spec;
  const int w = spec.projected_width();
  const int nodes = h.params.num_nodes;
  const double route_cost = h.params.t_d();
  const double raw_cost = h.params.t_r() + h.params.t_a();
  Exchange ex(h.ctx.get(), MessageType::kRawPage, w, kPhase);
  TupleBatch batch(h.spec.get());
  TupleBatch page_batch(h.spec.get());

  bool failed = false;
  auto drain = [&]() {
    for (int d = 0; d < nodes; ++d) {
      SpillingAggregator& agg = *merge.aggs[static_cast<size_t>(d)];
      while (std::optional<Message> msg = h.mesh[d]->TryRecv()) {
        auto count =
            ValidateWirePage(msg->payload.data(), msg->payload.size(),
                             h.params.message_page_bytes, w);
        if (!count.ok()) {
          failed = true;
          return;
        }
        const uint8_t* page_recs = msg->payload.data() + sizeof(uint32_t);
        for (int off = 0; off < *count; off += kBatchWidth) {
          const int run = std::min(*count - off, kBatchWidth);
          page_batch.BindView(page_recs + static_cast<size_t>(off) * w, w,
                              run);
          page_batch.ComputeHashes();
          h.ctx->clock().AddCpu(static_cast<double>(run) * raw_cost);
          h.ctx->stats().raw_records_received += run;
          if (!agg.AddProjectedBatch(page_batch).ok()) {
            failed = true;
            return;
          }
        }
        h.ctx->ReleasePageBuffer(std::move(msg->payload));
      }
    }
  };

  const double t0 = NowSeconds();
  int64_t chunk = 0;
  for (int64_t off = 0; off < tuples; off += kBatchWidth, ++chunk) {
    const int run =
        static_cast<int>(std::min<int64_t>(tuples - off, kBatchWidth));
    batch.BindView(recs.data() + static_cast<size_t>(off) * w, w, run);
    batch.ComputeHashes();
    h.ctx->clock().AddCpu(static_cast<double>(run) * route_cost);
    h.ctx->stats().raw_records_sent += run;
    if (!ex.AddBatch(batch).ok()) return -1;
    if (chunk % kPollEvery == 0) {
      drain();
      if (failed) return -1;
    }
  }
  if (!ex.FlushAll().ok()) return -1;
  drain();
  if (failed) return -1;
  batch.Clear();
  page_batch.Clear();
  return NowSeconds() - t0;
}

void RunExchangeHarness(bench::BenchJsonWriter& json) {
  const double scale = bench::BenchScale();
  const int64_t tuples =
      std::max<int64_t>(4096, static_cast<int64_t>(2'000'000 * scale));

  std::printf("=== exchange data plane: scalar vs batch ===\n");
  std::printf(
      "repartition + merge of %lld 16B records over an in-process mesh, "
      "best of 3\n\n",
      static_cast<long long>(tuples));
  bench::TablePrinter table({"nodes", "groups", "scalar(s)", "batch(s)",
                             "scalar tup/s", "batch tup/s", "speedup"});

  for (int nodes : {4, 16}) {
    Harness h(nodes, tuples);
    if (h.spec == nullptr) return;
    const int w = h.spec->projected_width();

    for (int64_t groups : {64LL, 4096LL, 65536LL}) {
      std::vector<uint8_t> recs(static_cast<size_t>(tuples) * w);
      Prng prng(42 + static_cast<uint64_t>(groups));
      for (int64_t i = 0; i < tuples; ++i) {
        int64_t g = static_cast<int64_t>(
            prng.NextBelow(static_cast<uint64_t>(groups)));
        int64_t v = static_cast<int64_t>(prng.NextBelow(1000));
        std::memcpy(recs.data() + i * w, &g, 8);
        std::memcpy(recs.data() + i * w + 8, &v, 8);
      }

      double scalar_s = 1e300;
      double batch_s = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        MergeSide scalar_merge(h, groups);
        MergeSide batch_merge(h, groups);
        scalar_s =
            std::min(scalar_s, RunScalarPass(h, recs, tuples, scalar_merge));
        batch_s =
            std::min(batch_s, RunBatchPass(h, recs, tuples, batch_merge));
        // Cross-check: both pipelines must produce the same groups.
        if (scalar_merge.TotalGroups() != batch_merge.TotalGroups()) {
          std::fprintf(
              stderr, "group count mismatch: %lld vs %lld\n",
              static_cast<long long>(scalar_merge.TotalGroups()),
              static_cast<long long>(batch_merge.TotalGroups()));
          return;
        }
      }
      if (scalar_s < 0 || batch_s < 0) {
        std::fprintf(stderr, "pipeline error\n");
        return;
      }

      const double scalar_tps = static_cast<double>(tuples) / scalar_s;
      const double batch_tps = static_cast<double>(tuples) / batch_s;
      table.AddRow({bench::FmtInt(nodes), bench::FmtInt(groups),
                    bench::FmtSeconds(scalar_s), bench::FmtSeconds(batch_s),
                    bench::FmtSci(scalar_tps), bench::FmtSci(batch_tps),
                    bench::FmtSeconds(scalar_s / batch_s)});
      const std::string suffix = "/groups=" + std::to_string(groups) +
                                 "/nodes=" + std::to_string(nodes);
      json.AddPoint("exchange_scalar" + suffix, 0, scalar_s, scalar_tps);
      json.AddPoint("exchange_batch" + suffix, 0, batch_s, batch_tps);
    }
  }
  table.Print();
}

}  // namespace
}  // namespace adaptagg

int main(int argc, char** argv) {
  (void)argc;
  adaptagg::bench::SetBenchBinaryName(argv[0]);
  adaptagg::bench::BenchJsonWriter json(
      "micro_exchange",
      "repartition+merge, COUNT+SUM GROUP BY int64, 16B records, scale=" +
          adaptagg::bench::FmtSeconds(adaptagg::bench::BenchScale()));
  adaptagg::RunExchangeHarness(json);
  json.Write();
  return 0;
}
