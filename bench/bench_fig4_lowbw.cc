// Reproduces Figure 4: the algorithms on an eight-processor,
// limited-bandwidth (10 Mbit/s Ethernet) configuration with a 2 million
// tuple relation — the analytical twin of the paper's implementation
// platform (§5).

#include "bench_util.h"

namespace adaptagg {
namespace bench {
namespace {

void Run() {
  CostModel::Config cfg;
  cfg.params = SystemParams::Cluster8();
  CostModel model(cfg);

  PrintHeader("Figure 4", "Performance on a Low-Bandwidth Network",
              cfg.params.ToString());

  TablePrinter table(
      {"S", "2P(s)", "Rep(s)", "Samp(s)", "A-2P(s)", "A-Rep(s)"});
  for (double s : SelectivitySweep(cfg.params.num_tuples)) {
    table.AddRow(
        {FmtSci(s), FmtSeconds(model.Time(AlgorithmKind::kTwoPhase, s)),
         FmtSeconds(model.Time(AlgorithmKind::kRepartitioning, s)),
         FmtSeconds(model.Time(AlgorithmKind::kSampling, s)),
         FmtSeconds(model.Time(AlgorithmKind::kAdaptiveTwoPhase, s)),
         FmtSeconds(model.Time(AlgorithmKind::kAdaptiveRepartitioning, s))});
  }
  table.Print();
  std::printf(
      "\nExpected shape: the serialized Ethernet makes full\n"
      "repartitioning expensive everywhere, so Rep (and the algorithms\n"
      "that choose it) only pays off once intermediate I/O would be\n"
      "worse; A-2P degrades most gracefully because it repartitions only\n"
      "the overflow (§4, Figure 4).\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptagg

int main(int, char** argv) {
  adaptagg::bench::SetBenchBinaryName(argv[0]);
  adaptagg::bench::Run();
  return 0;
}
