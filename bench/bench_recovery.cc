// Fault-recovery benchmark: wall-clock cost of surviving a node crash,
// across a checkpoint-cadence x crash-phase matrix. Every faulted cell
// injects a fail-stop crash on node 1 and runs with recovery enabled,
// so the run detects the death, prunes the fault, and re-executes from
// the last durable checkpoint (cadence K > 0), from scratch (K = 0), or
// at the cost model's chosen cadence (auto). The interesting series is
// wall time and replay work vs K: rare checkpoints pay more replay,
// frequent ones pay more snapshot I/O. A fault-free baseline per
// cadence isolates the checkpointing overhead itself. Numbers go to
// BENCH_recovery.json (EXPERIMENTS.md "Fault recovery" has the
// methodology).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/fault.h"

namespace adaptagg {
namespace {

using bench::BenchJsonWriter;
using bench::FmtInt;
using bench::FmtSeconds;
using bench::TablePrinter;

struct CrashPhase {
  const char* label;
  /// Fault-plan template; empty = fault-free baseline.
  std::string plan;
};

struct Cadence {
  const char* label;
  int64_t every_batches;  // -1 = cost-model auto, 0 = no checkpoints
};

}  // namespace
}  // namespace adaptagg

int main(int argc, char** argv) {
  using namespace adaptagg;
  (void)argc;
  bench::SetBenchBinaryName(argv[0]);

  const double scale = bench::BenchScale();
  const int nodes = 4;
  const int64_t tuples = static_cast<int64_t>(40'000 * scale);
  const int64_t groups = 2'000;

  WorkloadSpec workload;
  workload.num_nodes = nodes;
  workload.num_tuples = tuples;
  workload.num_groups = groups;
  auto rel = GenerateRelation(workload);
  if (!rel.ok()) {
    std::fprintf(stderr, "generate: %s\n", rel.status().ToString().c_str());
    return 1;
  }
  auto spec = MakeBenchQuery(&rel->schema());
  if (!spec.ok()) return 1;

  SystemParams params;
  params.num_nodes = nodes;
  params.num_tuples = tuples;
  params.max_hash_entries = 1'000;
  params.network = NetworkKind::kHighBandwidth;

  // Crash mid-scan (half of node 1's partition scanned) and mid-merge.
  const int64_t crash_tuple = tuples / nodes / 2;
  const CrashPhase kPhases[] = {
      {"none", ""},
      {"scan", "crash:node=1,tuple=" + std::to_string(crash_tuple)},
      {"merge", "crash:node=1,phase=merge"},
  };
  const Cadence kCadences[] = {
      {"k0", 0}, {"k4", 4}, {"k16", 16}, {"k64", 64}, {"auto", -1},
  };

  const std::string config_line =
      "nodes=" + std::to_string(nodes) + " tuples=" +
      std::to_string(tuples) + " groups=" + std::to_string(groups) +
      " crash_tuple=" + std::to_string(crash_tuple) +
      " algo=two-phase";
  bench::PrintHeader(
      "recovery",
      "crash recovery wall time vs checkpoint cadence and crash phase",
      config_line);

  TablePrinter table({"crash", "cadence", "wall s", "attempts",
                      "ckpts", "deduped", "ok"});
  BenchJsonWriter json("recovery", config_line);
  bool all_ok = true;
  for (const CrashPhase& phase : kPhases) {
    for (const Cadence& cadence : kCadences) {
      AlgorithmOptions options;
      options.recovery.enabled = true;
      options.recovery.checkpoint_every_batches = cadence.every_batches;
      if (!phase.plan.empty()) {
        auto plan = FaultPlan::Parse(phase.plan);
        if (!plan.ok()) {
          std::fprintf(stderr, "plan: %s\n",
                       plan.status().ToString().c_str());
          return 1;
        }
        options.fault_plan = std::move(*plan);
        options.failure.enabled = true;
        options.failure.recv_idle_timeout_s = 2.0;
      }

      Cluster cluster(params);
      const std::string name =
          std::string(phase.label) + "_" + cadence.label;
      bench::EngineRunOutcome out = bench::RunEngine(
          cluster, AlgorithmKind::kTwoPhase, *spec, *rel, options, name);
      all_ok = all_ok && out.ok;

      const int64_t attempts = out.metrics.Value("recovery.attempts");
      const int64_t ckpts =
          out.metrics.Value("recovery.checkpoints_written");
      const int64_t deduped = out.metrics.Value("recovery.pages_deduped");
      table.AddRow({phase.label, cadence.label,
                    FmtSeconds(out.wall_time_s), FmtInt(attempts),
                    FmtInt(ckpts), FmtInt(deduped),
                    out.ok ? "yes" : "NO"});
      json.AddPoint(name, out.sim_time_s, out.wall_time_s,
                    out.wall_time_s > 0
                        ? static_cast<double>(tuples) / out.wall_time_s
                        : 0);
      json.MergeMetrics(out.metrics);
    }
  }
  table.Print();
  if (!json.Write()) return 1;
  if (!all_ok) {
    std::fprintf(stderr, "recovery bench: some cells failed\n");
    return 1;
  }
  return 0;
}
