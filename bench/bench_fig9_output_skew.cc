// Reproduces Figure 9: performance under output skew. Eight nodes, four
// of which hold exactly one group each while the remaining groups live
// on the other four nodes (§6.2). The adaptive algorithms let each node
// choose its own strategy, which the static algorithms cannot do — with
// many groups they beat the best traditional approach.
//
// ADAPTAGG_BENCH_SCALE scales the tuple count as in Figure 8. (The
// paper's y-axis starts at 20 s to zoom into the differences; here the
// raw numbers are printed.)

#include "bench_util.h"
#include "workload/skew.h"

namespace adaptagg {
namespace bench {
namespace {

void Run() {
  const double scale = BenchScale();
  SystemParams params = SystemParams::Cluster8();
  params.num_tuples =
      static_cast<int64_t>(static_cast<double>(params.num_tuples) * scale);
  params.max_hash_entries = std::max<int64_t>(
      64, static_cast<int64_t>(
              static_cast<double>(params.max_hash_entries) * scale));

  PrintHeader("Figure 9", "Performance under Output Skew",
              params.ToString() + " scale=" + FmtSeconds(scale) +
                  ", 4 of 8 nodes hold one group each");

  std::vector<std::string> cols = {"S", "groups"};
  for (AlgorithmKind kind : Figure8Algorithms()) {
    cols.push_back(AlgorithmKindToString(kind) + "(s)");
  }
  cols.push_back("switched(A-2P)");
  TablePrinter table(cols);

  Cluster cluster(params);
  // Sweep the mid-to-high group range where the skew effect shows.
  for (double s : SelectivitySweep(params.num_tuples)) {
    int64_t groups = std::max<int64_t>(
        8, static_cast<int64_t>(s * static_cast<double>(params.num_tuples)));
    OutputSkewSpec sspec;
    sspec.num_nodes = params.num_nodes;
    sspec.single_group_nodes = 4;
    sspec.num_tuples = params.num_tuples;
    sspec.num_groups = groups;
    sspec.seed = 9 + static_cast<uint64_t>(groups);
    auto rel = GenerateOutputSkewRelation(sspec);
    if (!rel.ok()) {
      std::fprintf(stderr, "generate failed: %s\n",
                   rel.status().ToString().c_str());
      return;
    }
    auto spec = MakeBenchQuery(&rel->schema());
    if (!spec.ok()) return;

    std::vector<std::string> row = {FmtSci(s), FmtInt(groups)};
    int switched = 0;
    AlgorithmOptions opts;
    opts.gather_results = false;
    for (AlgorithmKind kind : Figure8Algorithms()) {
      EngineRunOutcome out = RunEngine(cluster, kind, *spec, *rel, opts);
      row.push_back(out.ok ? FmtSeconds(out.sim_time_s) : "ERR");
      if (kind == AlgorithmKind::kAdaptiveTwoPhase) {
        switched = out.nodes_switched;
      }
    }
    row.push_back(FmtInt(switched));
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Fig. 9): once the busy nodes' group counts\n"
      "exceed M, A-2P switches exactly those nodes (column shows ~4, not\n"
      "8) and outperforms both static algorithms — per-node adaptivity\n"
      "is something no single global choice can match.\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptagg

int main(int, char** argv) {
  adaptagg::bench::SetBenchBinaryName(argv[0]);
  adaptagg::bench::Run();
  return 0;
}
