#ifndef ADAPTAGG_BENCH_BENCH_UTIL_H_
#define ADAPTAGG_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "agg/reference.h"
#include "cluster/cluster.h"
#include "core/algorithm.h"
#include "model/cost_model.h"
#include "obs/metrics_export.h"
#include "obs/trace_export.h"
#include "workload/generator.h"

namespace adaptagg {
namespace bench {

/// Records the benchmark binary's name (basename of argv[0]) so
/// BenchJsonWriter can stamp it into every BENCH_*.json. Call first
/// thing in main().
void SetBenchBinaryName(const char* argv0);

/// The name recorded by SetBenchBinaryName, or "unknown".
std::string BenchBinaryName();

/// Prints an aligned text table: header row, separator, data rows.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);

  /// Writes the whole table to stdout.
  void Print() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Seconds with 4 significant digits ("12.34", "0.001234").
std::string FmtSeconds(double s);

/// Scientific notation with 2 digits ("2.5e-04").
std::string FmtSci(double v);

std::string FmtInt(int64_t v);

/// The paper's x-axis: log-spaced grouping selectivities from one group
/// (1/|R|) up to 0.5, `per_decade` points per decade.
std::vector<double> SelectivitySweep(int64_t num_tuples,
                                     int per_decade = 1);

/// Engine benchmark scale factor from ADAPTAGG_BENCH_SCALE (default 1.0
/// = the paper's full 2M-tuple workload). Scaling multiplies the tuple
/// count and the hash-table bound M together so algorithm crossovers stay
/// at the same selectivities.
double BenchScale();

/// One engine run: generates (or reuses) the workload and reports modeled
/// completion time plus the run's merged metric snapshot.
struct EngineRunOutcome {
  double sim_time_s = 0;
  double wall_time_s = 0;
  int nodes_switched = 0;
  int64_t spilled_records = 0;
  bool ok = false;
  MetricsSnapshot metrics;
};

/// Runs `kind` on the cluster. When the environment variable
/// ADAPTAGG_TRACE_DIR is set, trace collection is forced on and the run
/// is exported as `<dir>/TRACE_<label>.json` (Chrome trace-event
/// format); `trace_label` defaults to the algorithm name, and the last
/// run with a given label wins.
EngineRunOutcome RunEngine(Cluster& cluster, AlgorithmKind kind,
                           const AggregationSpec& spec,
                           PartitionedRelation& rel,
                           const AlgorithmOptions& options,
                           const std::string& trace_label = std::string());

/// Prints the standard bench header: figure id, description, config line.
void PrintHeader(const std::string& figure, const std::string& description,
                 const std::string& config);

/// Schema version stamped into every BENCH_*.json. Bump when the layout
/// changes incompatibly. v2 added schema_version, bench_binary, and the
/// embedded metrics object; v3 added cpu_dispatch (the resolved SIMD
/// code path — "scalar" / "avx2" / "neon" — so wall-clock numbers are
/// never compared across different kernels by accident).
inline constexpr int kBenchJsonSchemaVersion = 3;

/// Collects benchmark points and writes them as `BENCH_<bench_id>.json`
/// so numbers can be checked into the repo and diffed across commits.
/// Layout (schema v3):
///
///   {"bench": "...", "schema_version": 3, "bench_binary": "...",
///    "cpu_dispatch": "...", "config": "...",
///    "points": [{"name": "...", "sim_time_s": ...,
///                "wall_time_s": ..., "tuples_per_sec": ...}, ...],
///    "metrics": {...}}
///
/// Times are seconds; `tuples_per_sec` is input tuples divided by wall
/// time (0 when a point has no tuple count). Non-finite values are
/// written as 0 to keep the file valid JSON. `metrics` is the merged
/// observability snapshot of every run fed to MergeMetrics (omitted
/// when empty, e.g. in obs-disabled builds).
class BenchJsonWriter {
 public:
  BenchJsonWriter(std::string bench_id, std::string config);

  void AddPoint(const std::string& name, double sim_time_s,
                double wall_time_s, double tuples_per_sec);

  /// Folds one run's metric snapshot into the bench-wide snapshot that
  /// Write embeds under "metrics".
  void MergeMetrics(const MetricsSnapshot& metrics);

  /// Writes `<dir>/BENCH_<bench_id>.json` (dir defaults to
  /// ADAPTAGG_BENCH_JSON_DIR or "."). Returns false and prints to stderr
  /// on I/O failure.
  bool Write(const std::string& dir = std::string()) const;

 private:
  struct Point {
    std::string name;
    double sim_time_s;
    double wall_time_s;
    double tuples_per_sec;
  };

  std::string bench_id_;
  std::string config_;
  std::vector<Point> points_;
  MetricsSnapshot metrics_;
};

}  // namespace bench
}  // namespace adaptagg

#endif  // ADAPTAGG_BENCH_BENCH_UTIL_H_
