#ifndef ADAPTAGG_BENCH_BENCH_UTIL_H_
#define ADAPTAGG_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "agg/reference.h"
#include "cluster/cluster.h"
#include "core/algorithm.h"
#include "model/cost_model.h"
#include "workload/generator.h"

namespace adaptagg {
namespace bench {

/// Prints an aligned text table: header row, separator, data rows.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);

  /// Writes the whole table to stdout.
  void Print() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Seconds with 4 significant digits ("12.34", "0.001234").
std::string FmtSeconds(double s);

/// Scientific notation with 2 digits ("2.5e-04").
std::string FmtSci(double v);

std::string FmtInt(int64_t v);

/// The paper's x-axis: log-spaced grouping selectivities from one group
/// (1/|R|) up to 0.5, `per_decade` points per decade.
std::vector<double> SelectivitySweep(int64_t num_tuples,
                                     int per_decade = 1);

/// Engine benchmark scale factor from ADAPTAGG_BENCH_SCALE (default 1.0
/// = the paper's full 2M-tuple workload). Scaling multiplies the tuple
/// count and the hash-table bound M together so algorithm crossovers stay
/// at the same selectivities.
double BenchScale();

/// One engine run: generates (or reuses) the workload and reports modeled
/// completion time.
struct EngineRunOutcome {
  double sim_time_s = 0;
  double wall_time_s = 0;
  int nodes_switched = 0;
  int64_t spilled_records = 0;
  bool ok = false;
};

EngineRunOutcome RunEngine(Cluster& cluster, AlgorithmKind kind,
                           const AggregationSpec& spec,
                           PartitionedRelation& rel,
                           const AlgorithmOptions& options);

/// Prints the standard bench header: figure id, description, config line.
void PrintHeader(const std::string& figure, const std::string& description,
                 const std::string& config);

/// Collects benchmark points and writes them as `BENCH_<bench_id>.json`
/// so numbers can be checked into the repo and diffed across commits.
/// Layout:
///
///   {"bench": "...", "config": "...",
///    "points": [{"name": "...", "sim_time_s": ...,
///                "wall_time_s": ..., "tuples_per_sec": ...}, ...]}
///
/// Times are seconds; `tuples_per_sec` is input tuples divided by wall
/// time (0 when a point has no tuple count). Non-finite values are
/// written as 0 to keep the file valid JSON.
class BenchJsonWriter {
 public:
  BenchJsonWriter(std::string bench_id, std::string config);

  void AddPoint(const std::string& name, double sim_time_s,
                double wall_time_s, double tuples_per_sec);

  /// Writes `<dir>/BENCH_<bench_id>.json` (dir defaults to
  /// ADAPTAGG_BENCH_JSON_DIR or "."). Returns false and prints to stderr
  /// on I/O failure.
  bool Write(const std::string& dir = std::string()) const;

 private:
  struct Point {
    std::string name;
    double sim_time_s;
    double wall_time_s;
    double tuples_per_sec;
  };

  std::string bench_id_;
  std::string config_;
  std::vector<Point> points_;
};

}  // namespace bench
}  // namespace adaptagg

#endif  // ADAPTAGG_BENCH_BENCH_UTIL_H_
