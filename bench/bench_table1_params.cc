// Reproduces Table 1: the parameters of the analytical models, plus the
// derived per-operation times in seconds.

#include "bench_util.h"

namespace adaptagg {
namespace bench {
namespace {

void Run() {
  SystemParams p = SystemParams::Paper32();
  PrintHeader("Table 1", "Parameters for the Analytical Models",
              p.ToString());

  TablePrinter table({"Sym", "Description", "Value", "Derived time"});
  table.AddRow({"N", "number of processors", FmtInt(p.num_nodes), ""});
  table.AddRow({"mips", "MIPS of the processor", FmtSeconds(p.mips), ""});
  table.AddRow({"R", "size of relation",
                FmtInt(static_cast<int64_t>(p.relation_bytes() / 1e6)) +
                    " MB",
                ""});
  table.AddRow({"|R|", "number of tuples in R", FmtInt(p.num_tuples), ""});
  table.AddRow({"|R_i|", "tuples on node i",
                FmtInt(static_cast<int64_t>(p.tuples_per_node())), ""});
  table.AddRow({"P", "page size", FmtInt(p.page_bytes) + " B", ""});
  table.AddRow({"IO", "time to read a page (seq.)",
                FmtSeconds(p.io_seq_s * 1e3) + " ms", ""});
  table.AddRow({"rIO", "time to read a random page",
                FmtSeconds(p.io_rand_s * 1e3) + " ms", ""});
  table.AddRow({"p", "projectivity of aggregation",
                FmtSeconds(p.projectivity * 100) + " %", ""});
  table.AddRow({"t_r", "time to read a tuple",
                FmtInt(static_cast<int64_t>(p.instr_read_tuple)) + "/mips",
                FmtSci(p.t_r()) + " s"});
  table.AddRow({"t_w", "time to write a tuple",
                FmtInt(static_cast<int64_t>(p.instr_write_tuple)) + "/mips",
                FmtSci(p.t_w()) + " s"});
  table.AddRow({"t_h", "time to compute hash value",
                FmtInt(static_cast<int64_t>(p.instr_hash)) + "/mips",
                FmtSci(p.t_h()) + " s"});
  table.AddRow({"t_a", "time to process a tuple",
                FmtInt(static_cast<int64_t>(p.instr_agg)) + "/mips",
                FmtSci(p.t_a()) + " s"});
  table.AddRow({"S", "GROUP BY selectivity",
                "1/|R| .. 0.5", ""});
  table.AddRow({"t_d", "time to compute destination",
                FmtInt(static_cast<int64_t>(p.instr_dest)) + "/mips",
                FmtSci(p.t_d()) + " s"});
  table.AddRow({"m_p", "message protocol cost/page",
                FmtInt(static_cast<int64_t>(p.instr_msg_per_page)) +
                    "/mips",
                FmtSci(p.m_p()) + " s"});
  table.AddRow({"m_l", "time to send a page",
                FmtSeconds(p.m_l() * 1e3) + " ms", ""});
  table.AddRow({"M", "default max. hash table size",
                FmtInt(p.max_hash_entries) + " entries", ""});
  table.Print();

  std::printf("\nDerived selectivity identities (DESIGN.md note):\n");
  TablePrinter ids({"S", "S_l = min(S*N,1)", "S_g = max(1/N,S)",
                    "S_l * S_g"});
  for (double s : {1.25e-7, 1e-5, 1e-3, 0.03125, 0.25}) {
    double sl = std::min(s * p.num_nodes, 1.0);
    double sg = std::max(1.0 / p.num_nodes, s);
    ids.AddRow({FmtSci(s), FmtSci(sl), FmtSci(sg), FmtSci(sl * sg)});
  }
  ids.Print();
}

}  // namespace
}  // namespace bench
}  // namespace adaptagg

int main(int, char** argv) {
  adaptagg::bench::SetBenchBinaryName(argv[0]);
  adaptagg::bench::Run();
  return 0;
}
