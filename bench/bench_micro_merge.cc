// Wall-clock sweep of the final-merge topologies (DESIGN.md §12):
// every pinned MergeMode plus kAuto, across three regimes chosen to
// make a different topology win each —
//
//   high_n_low_g : many nodes, few groups, real sockets. The seed
//                  scatter ships ~2N^2 mostly-empty pages, each paying a
//                  syscall + framing; the reduction topologies collapse
//                  that to ~N^2 + 3N, so the tree wins on message
//                  economy. (Over the in-process mesh a message costs
//                  nanoseconds, so this cell runs TCP.) At full group
//                  overlap the tree and its degenerate central form ship
//                  the same N-1 tables, so they tie on *total* work —
//                  the tree's log-depth fold only pulls ahead of central
//                  on wall clock when folds really run in parallel; on a
//                  serial CI host the table shows them as a statistical
//                  tie, which the winner check accepts.
//   high_g_skew  : huge skewed group count. Central/tree fold the whole
//                  set on single nodes, the shared table serializes on
//                  hot slots; merge-side radix staging on the seed wire
//                  wins on locality.
//   inproc_low_contention : plenty of uniform groups on the in-process
//                  mesh. The shared lock-free table skips serialize +
//                  wire + deserialize entirely and wins.
//
// Every cell runs the Sampling algorithm so kAuto takes the real
// cost-model decision. Reps are interleaved across modes (rep-major,
// rotating start) so machine drift hits every mode alike, and each mode
// reports its median wall time — the median shrugs off the long
// scheduler tail that makes min/mean flap on shared hosts (modeled time
// is topology-invariant by construction — the interesting number here
// is the wall clock). Modes within kTieBand of the fastest count as
// co-winners. Numbers go to BENCH_micro_merge.json.
//
// ADAPTAGG_BENCH_SCALE scales tuple counts (group counts and M scale
// with them so the regimes keep their shape).

#include <algorithm>
#include <cstdlib>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "model/merge_model.h"

namespace adaptagg {
namespace bench {
namespace {

constexpr int kReps = 9;

/// Modes whose median wall lands within this factor of the cell's
/// fastest count as co-winners. 1.10 matches the observed cross-run
/// noise floor of a serial shared host; some ties are also genuine
/// (tree vs central do identical total work — the tree only pulls ahead
/// on the fold critical path when folds actually run in parallel).
constexpr double kTieBand = 1.10;

struct Cell {
  const char* name;
  int nodes;
  int64_t tuples;
  int64_t groups;
  int64_t max_hash_entries;
  double zipf_theta;    // 0 = uniform
  int64_t llc_bytes;    // radix LLC budget (-1 = model default)
  bool tcp;             // loopback sockets instead of the inproc mesh
  int reps;             // wall-clock reps (min wins); TCP needs more
  MergeMode expected_winner;
};

/// Distinct from every port range the tests claim (42xxx, 43xxx).
constexpr int kTcpBasePort = 44'150;

struct ModeOutcome {
  std::string label;
  std::string resolved;  // topology the run actually used
  double sim_time_s = 0;
  std::vector<double> walls;  // one sample per rep; reported as median
  double wall_time_s = -1;    // median, filled in after the rep loop

  void FinalizeWall() {
    if (walls.empty()) return;
    std::sort(walls.begin(), walls.end());
    const size_t n = walls.size();
    wall_time_s = (n % 2 == 1)
                      ? walls[n / 2]
                      : 0.5 * (walls[n / 2 - 1] + walls[n / 2]);
  }
};

const char* ModeLabel(MergeMode mode) { return MergeModeToString(mode); }

/// One engine run of `mode`; folds the wall time into `out` (min wins).
bool RunModeOnce(const Cell& cell, Cluster& cluster,
                 const AggregationSpec& spec, PartitionedRelation& rel,
                 BenchJsonWriter& json, MergeMode mode, bool first_rep,
                 ModeOutcome& out) {
  AlgorithmOptions opts;
  opts.gather_results = false;
  opts.merge_mode = mode;
  opts.radix_llc_bytes = cell.llc_bytes;
  opts.crossover_threshold = 1'000'000'000;  // keep the two-phase body
  EngineRunOutcome run =
      RunEngine(cluster, AlgorithmKind::kSampling, spec, rel, opts,
                std::string(cell.name) + "_" + out.label);
  if (!run.ok) return false;
  out.sim_time_s = run.sim_time_s;
  out.walls.push_back(run.wall_time_s);
  for (const auto& e : run.metrics.entries) {
    if (e.name == "core.merge_topology") {
      out.resolved = MergeTopologyToString(
          static_cast<MergeTopology>(e.value));
    }
  }
  if (first_rep) json.MergeMetrics(run.metrics);
  return true;
}

void Run() {
  const double scale = BenchScale();
  const auto scaled = [scale](int64_t v) {
    return std::max<int64_t>(64, static_cast<int64_t>(
                                     static_cast<double>(v) * scale));
  };

  const Cell kCells[] = {
      {"high_n_low_g", 24, scaled(2'400), 64, 1'024, 0.0, -1,
       /*tcp=*/true, /*reps=*/15, MergeMode::kTree},
      // 256 KiB LLC budget: the zipf sample undercounts groups (~40k
      // seen of 80k real), and the budget must be small enough that
      // even the undercount busts it, or auto never engages the radix
      // staging it is being graded on.
      {"high_g_skew", 4, scaled(160'000), scaled(80'000), scaled(65'536),
       0.9, 256 * 1024, /*tcp=*/false, /*reps=*/kReps, MergeMode::kRadix},
      // G=4k keeps the concurrent table (2x est = 8192 slots) L2-ish
      // resident — shared's regime is low contention AND a cache-sized
      // table; 8 nodes scale up the serialize/wire/deserialize volume
      // every other topology pays and shared skips.
      {"inproc_low_contention", 8, scaled(80'000), scaled(4'000),
       scaled(65'536), 0.0, -1, /*tcp=*/false, /*reps=*/kReps,
       MergeMode::kShared},
  };
  const MergeMode kModes[] = {MergeMode::kCentral, MergeMode::kTree,
                              MergeMode::kRadix, MergeMode::kShared,
                              MergeMode::kAuto};

  PrintHeader("micro: merge topology",
              "final-merge topologies across their winning regimes "
              "(median wall of >=" + std::to_string(kReps) + " reps)",
              "scale=" + FmtSeconds(scale));

  TablePrinter table({"cell", "central(s)", "tree(s)", "radix(s)",
                      "shared(s)", "auto(s)", "winner", "expected"});
  BenchJsonWriter json("micro_merge", "scale=" + FmtSeconds(scale));

  for (const Cell& cell : kCells) {
    SystemParams params;
    params.num_nodes = cell.nodes;
    params.num_tuples = cell.tuples;
    params.max_hash_entries = cell.max_hash_entries;
    params.network = NetworkKind::kHighBandwidth;

    WorkloadSpec wspec;
    wspec.num_nodes = cell.nodes;
    wspec.num_tuples = cell.tuples;
    wspec.num_groups = cell.groups;
    if (cell.zipf_theta > 0) {
      wspec.distribution = GroupDistribution::kZipf;
      wspec.zipf_theta = cell.zipf_theta;
    }
    auto rel = GenerateRelation(wspec);
    if (!rel.ok()) return;
    auto spec = MakeBenchQuery(&rel->schema());
    if (!spec.ok()) return;

    Cluster cluster(params);
    if (cell.tcp) {
      cluster.set_transport_factory(
          [](int n) { return MakeTcpMesh(n, kTcpBasePort); });
    }
    constexpr int kNumModes =
        static_cast<int>(sizeof(kModes) / sizeof(kModes[0]));
    ModeOutcome outs[kNumModes];
    bool all_ok = true;
    // Rep-major with a rotating start and alternating direction: every
    // rep touches every mode back to back (slow drift cancels out of
    // the comparison), the rotation walks each mode through every
    // position in the cycle (warm-up favors late positions), and the
    // direction flip breaks the fixed predecessor relation (a mode
    // inherits its predecessor's allocator/page-cache state — with one
    // fixed cyclic order that gift always lands on the same neighbor).
    for (int rep = 0; rep < cell.reps && all_ok; ++rep) {
      for (int k = 0; k < kNumModes; ++k) {
        const int step = (rep % 2 == 0) ? k : kNumModes - 1 - k;
        const int mi = (rep + step) % kNumModes;
        outs[mi].label = ModeLabel(kModes[mi]);
        if (!RunModeOnce(cell, cluster, *spec, *rel, json, kModes[mi],
                         rep == 0 && k == 0, outs[mi])) {
          all_ok = false;
          break;
        }
      }
    }
    if (std::getenv("ADAPTAGG_BENCH_DEBUG") != nullptr) {
      for (int mi = 0; mi < kNumModes; ++mi) {
        std::printf("DBG %s %s:", cell.name, ModeLabel(kModes[mi]));
        for (double w : outs[mi].walls) std::printf(" %.4f", w);
        std::printf("\n");
      }
    }
    std::vector<std::string> row = {cell.name};
    for (int mi = 0; mi < kNumModes; ++mi) outs[mi].FinalizeWall();
    ModeOutcome best;
    double auto_wall = 0;
    for (int mi = 0; mi < kNumModes; ++mi) {
      const ModeOutcome& out = outs[mi];
      row.push_back(all_ok ? FmtSeconds(out.wall_time_s) : "ERR");
      if (!all_ok) continue;
      json.AddPoint(std::string(cell.name) + "/" + out.label,
                    out.sim_time_s, out.wall_time_s,
                    out.wall_time_s > 0
                        ? static_cast<double>(cell.tuples) / out.wall_time_s
                        : 0);
      if (kModes[mi] == MergeMode::kAuto) {
        auto_wall = out.wall_time_s;
      } else if (best.label.empty() ||
                 out.wall_time_s < best.wall_time_s) {
        best = out;
      }
    }
    // Co-winners: every pinned mode within kTieBand of the fastest.
    std::string winner;
    bool expected_wins = false;
    if (all_ok) {
      for (int mi = 0; mi < kNumModes; ++mi) {
        if (kModes[mi] == MergeMode::kAuto) continue;
        if (outs[mi].wall_time_s <= best.wall_time_s * kTieBand) {
          if (!winner.empty()) winner += "=";
          winner += outs[mi].label;
          if (kModes[mi] == cell.expected_winner) expected_wins = true;
        }
      }
    } else {
      winner = "ERR";
    }
    row.push_back(winner);
    row.push_back(ModeLabel(cell.expected_winner));
    table.AddRow(std::move(row));
    // The shipped configuration is kAuto: the cell passes when the cost
    // model resolves the expected topology and auto's wall lands within
    // the tie band of the best pin — or when the expected pin co-wins
    // outright.
    if (all_ok && auto_wall > 0) {
      std::string auto_resolved;
      for (int mi = 0; mi < kNumModes; ++mi) {
        if (kModes[mi] == MergeMode::kAuto) auto_resolved = outs[mi].resolved;
      }
      const bool auto_picked_expected =
          auto_resolved == ModeLabel(cell.expected_winner);
      const bool pass =
          (auto_picked_expected &&
           auto_wall <= best.wall_time_s * kTieBand) ||
          expected_wins;
      std::printf(
          "[%s] auto resolved %s, auto/best = %.3f, expected %s: %s\n",
          cell.name, auto_resolved.empty() ? "?" : auto_resolved.c_str(),
          auto_wall / best.wall_time_s, ModeLabel(cell.expected_winner),
          pass ? "PASS" : "FAIL");
    }
  }
  table.Print();
  json.Write();
  std::printf(
      "\nExpected shape: tree wins high_n_low_g on message economy\n"
      "(~N^2+3N messages vs the seed scatter's ~2N^2; it ties with its\n"
      "degenerate central form on serial hosts and beats it on the fold\n"
      "critical path when cores are available), radix wins high_g_skew\n"
      "(locality on the seed wire while central/tree centralize the fold\n"
      "and the shared table serializes on hot slots), shared wins\n"
      "inproc_low_contention (no serialize/wire/deserialize), and auto\n"
      "lands within ~10%% of each cell's winner.\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptagg

int main(int, char** argv) {
  adaptagg::bench::SetBenchBinaryName(argv[0]);
  adaptagg::bench::Run();
  return 0;
}
