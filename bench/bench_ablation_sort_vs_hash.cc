// Ablation: hash-based vs sort-based aggregation inside Two Phase — the
// §1 design decision ("we assume that aggregation on a node is done by
// hashing", with [BBDW83]'s sort-based algorithms as the prior art).
// Sorting's intermediate I/O scales with the input that exceeds memory;
// hashing's scales with the number of groups. At low selectivity the
// hash table absorbs everything and sort pays full run I/O for nothing.

#include "bench_util.h"

namespace adaptagg {
namespace bench {
namespace {

void Run() {
  const double scale = BenchScale();
  SystemParams params = SystemParams::Cluster8();
  params.network = NetworkKind::kHighBandwidth;  // isolate the I/O story
  params.num_tuples = static_cast<int64_t>(500'000 * scale);
  params.max_hash_entries =
      std::max<int64_t>(64, static_cast<int64_t>(2'500 * scale));

  PrintHeader("Ablation: sort-based vs hash-based aggregation",
              "2P with hashing vs Sort-2P ([BBDW83] baseline), engine",
              params.ToString() + " scale=" + FmtSeconds(scale));

  TablePrinter table({"S", "groups", "2P-hash(s)", "Sort-2P(s)",
                      "hash spill pages", "sort run pages"});
  Cluster cluster(params);
  for (double s : SelectivitySweep(params.num_tuples)) {
    int64_t groups = std::max<int64_t>(
        1, static_cast<int64_t>(s * static_cast<double>(params.num_tuples)));
    WorkloadSpec wspec;
    wspec.num_nodes = params.num_nodes;
    wspec.num_tuples = params.num_tuples;
    wspec.num_groups = groups;
    wspec.seed = 55 + static_cast<uint64_t>(groups);
    auto rel = GenerateRelation(wspec);
    if (!rel.ok()) return;
    auto spec = MakeBenchQuery(&rel->schema());
    if (!spec.ok()) return;

    AlgorithmOptions opts;
    opts.gather_results = false;
    RunResult hash = cluster.Run(
        *MakeAlgorithm(AlgorithmKind::kTwoPhase), *spec, *rel, opts);
    RunResult sort = cluster.Run(
        *MakeAlgorithm(AlgorithmKind::kSortTwoPhase), *spec, *rel, opts);
    if (!hash.status.ok() || !sort.status.ok()) {
      std::fprintf(stderr, "run failed\n");
      return;
    }
    int64_t hash_pages = 0, sort_pages = 0;
    for (const auto& st : hash.node_stats) {
      hash_pages += st.spill.spill_pages_written;
    }
    for (const auto& st : sort.node_stats) {
      sort_pages += st.spill.spill_pages_written;
    }
    table.AddRow({FmtSci(s), FmtInt(groups),
                  FmtSeconds(hash.sim_time_s), FmtSeconds(sort.sim_time_s),
                  FmtInt(hash_pages), FmtInt(sort_pages)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: identical when everything fits in memory; once\n"
      "the input exceeds M records, Sort-2P pays run I/O proportional to\n"
      "the INPUT at every selectivity, while hash 2P's spill I/O grows\n"
      "only with the GROUP count — the reason the paper assumes hashing.\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptagg

int main(int, char** argv) {
  adaptagg::bench::SetBenchBinaryName(argv[0]);
  adaptagg::bench::Run();
  return 0;
}
