// Microbenchmarks of the hot building blocks (google-benchmark): the
// aggregation hash table (scalar and batched), the spilling aggregator,
// page building, key hashing, and the workload generators — plus a
// wall-clock scalar-vs-batch local-aggregation harness whose numbers are
// written to BENCH_micro_core.json (see EXPERIMENTS.md).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "agg/batch_kernels.h"
#include "agg/spilling_aggregator.h"
#include "bench_util.h"
#include "common/random.h"
#include "model/locality_model.h"
#include "storage/page.h"
#include "workload/distributions.h"

namespace adaptagg {
namespace {

void BM_HashTableUpsert(benchmark::State& state) {
  Schema schema({{"g", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}});
  auto spec = MakeCountSumSpec(&schema, 0, 1);
  const int64_t groups = state.range(0);
  AggHashTable table(&*spec, groups);
  uint8_t proj[16];
  int64_t v = 1;
  std::memcpy(proj + 8, &v, 8);
  int64_t g = 0;
  for (auto _ : state) {
    std::memcpy(proj, &g, 8);
    uint64_t h = spec->HashKey(proj);
    benchmark::DoNotOptimize(table.UpsertProjected(proj, h));
    g = (g + 1) % groups;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashTableUpsert)->Arg(64)->Arg(4096)->Arg(262144);

// The batched counterpart: gathers kBatchWidth raw tuples, hashes all
// keys at once, and upserts through the fused COUNT+SUM kernel.
void BM_HashTableUpsertBatch(benchmark::State& state) {
  Schema schema({{"g", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}});
  auto spec = MakeCountSumSpec(&schema, 0, 1);
  const int64_t groups = state.range(0);
  AggHashTable table(&*spec, groups);
  std::vector<uint8_t> raw(static_cast<size_t>(kBatchWidth) * 16);
  int64_t g = 0;
  int64_t v = 1;
  for (int i = 0; i < kBatchWidth; ++i) {
    std::memcpy(raw.data() + i * 16, &g, 8);
    std::memcpy(raw.data() + i * 16 + 8, &v, 8);
    g = (g + 1) % groups;
  }
  TupleBatch batch(&*spec);
  for (auto _ : state) {
    batch.Clear();
    for (int i = 0; i < kBatchWidth; ++i) {
      TupleView t(raw.data() + i * 16, &schema);
      batch.Gather(t);
    }
    batch.ComputeHashes();
    benchmark::DoNotOptimize(table.UpsertProjectedBatch(batch, 0));
  }
  state.SetItemsProcessed(state.iterations() * kBatchWidth);
}
BENCHMARK(BM_HashTableUpsertBatch)->Arg(64)->Arg(4096)->Arg(262144);

void BM_SpillingAggregatorOverflow(benchmark::State& state) {
  Schema schema({{"g", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}});
  auto spec = MakeCountSumSpec(&schema, 0, 1);
  const int64_t groups = state.range(0);
  uint8_t proj[16];
  int64_t v = 1;
  std::memcpy(proj + 8, &v, 8);
  for (auto _ : state) {
    state.PauseTiming();
    SimDisk disk(4096);
    SpillingAggregator agg(&*spec, &disk, /*max_entries=*/1024);
    state.ResumeTiming();
    for (int64_t i = 0; i < 100'000; ++i) {
      int64_t g = i % groups;
      std::memcpy(proj, &g, 8);
      benchmark::DoNotOptimize(agg.AddProjected(proj));
    }
    int64_t emitted = 0;
    Status st = agg.Finish(
        [&](const uint8_t*, const uint8_t*) { ++emitted; });
    benchmark::DoNotOptimize(st.ok());
    if (emitted != groups) state.SkipWithError("wrong group count");
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_SpillingAggregatorOverflow)->Arg(512)->Arg(8192)->Arg(65536);

void BM_PageBuildAndRead(benchmark::State& state) {
  PageBuilder builder(2048, 16);
  uint8_t rec[16] = {};
  const int cap = PageBuilder::Capacity(2048, 16);
  for (auto _ : state) {
    for (int i = 0; i < cap; ++i) builder.Append(rec);
    std::vector<uint8_t> page = builder.Finish();
    PageReader reader(page.data(), 2048, 16);
    int64_t sum = 0;
    for (int i = 0; i < reader.count(); ++i) {
      sum += reader.record(i)[0];
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * cap);
}
BENCHMARK(BM_PageBuildAndRead);

void BM_HashBytes(benchmark::State& state) {
  std::vector<uint8_t> key(static_cast<size_t>(state.range(0)), 0x3c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashBytes(key.data(), key.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashBytes)->Arg(8)->Arg(16)->Arg(64);

void BM_ZipfGenerator(benchmark::State& state) {
  ZipfGenerator zipf(1'000'000, 0.9, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfGenerator);

void BM_PrngNextBelow(benchmark::State& state) {
  Prng prng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prng.NextBelow(1'000'003));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrngNextBelow);

// --- scalar vs batch local-aggregation wall-clock harness ------------

double NowSeconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// One pass of the pre-batch per-tuple pipeline inner loop: project,
/// hash, upsert — exactly what the six algorithms did per tuple.
double RunScalarPass(const AggregationSpec& spec, const Schema& schema,
                     const std::vector<uint8_t>& raw, int64_t tuples,
                     AggHashTable& table) {
  std::vector<uint8_t> proj(static_cast<size_t>(spec.projected_width()));
  const double t0 = NowSeconds();
  for (int64_t i = 0; i < tuples; ++i) {
    TupleView t(raw.data() + i * schema.tuple_size(), &schema);
    spec.ProjectRaw(t, proj.data());
    uint64_t h = spec.HashKey(proj.data());
    benchmark::DoNotOptimize(table.UpsertProjected(proj.data(), h));
  }
  return NowSeconds() - t0;
}

/// One pass of the batched pipeline inner loop: gather a page worth of
/// tuples, hash all keys, run the fused batch upsert. When the table is
/// in radix mode the pass stages through the overflow entry point and
/// the final drain is timed too — staging deferred is not work saved.
double RunBatchPass(const AggregationSpec& spec, const Schema& schema,
                    const std::vector<uint8_t>& raw, int64_t tuples,
                    AggHashTable& table) {
  TupleBatch batch(&spec);
  std::vector<int> overflow;
  const int rec_size = schema.tuple_size();
  const bool radix = table.radix_partitioning();
  const double t0 = NowSeconds();
  int64_t i = 0;
  while (i < tuples) {
    batch.Clear();
    // Page records are densely packed, so gather them run-at-a-time just
    // like LocalScanner::FillBatch does.
    while (!batch.full() && i < tuples) {
      i += batch.GatherRun(raw.data() + i * rec_size, rec_size,
                           static_cast<int>(std::min<int64_t>(
                               tuples - i, kBatchWidth - batch.size())));
    }
    batch.ComputeHashes();
    if (radix) {
      table.UpsertProjectedBatchOverflow(batch, 0, overflow);
    } else {
      benchmark::DoNotOptimize(table.UpsertProjectedBatch(batch, 0));
    }
  }
  if (radix) table.FlushRadixStaging();
  return NowSeconds() - t0;
}

void RunLocalAggHarness(bench::BenchJsonWriter& json) {
  const double scale = bench::BenchScale();
  const int64_t tuples =
      std::max<int64_t>(1024, static_cast<int64_t>(4'000'000 * scale));
  Schema schema({{"g", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}});
  auto spec = MakeCountSumSpec(&schema, 0, 1);
  if (!spec.ok()) return;

  std::printf("\n=== local aggregation: scalar vs batch ===\n");
  std::printf("COUNT(*), SUM(v) GROUP BY g over %lld tuples, best of 3\n\n",
              static_cast<long long>(tuples));
  bench::TablePrinter table(
      {"groups", "radix", "scalar(s)", "batch(s)", "scalar tup/s",
       "batch tup/s", "speedup"});

  // Low grouping selectivity is the canonical case (the hash table stays
  // in memory); 262144 adds a cache-unfriendly point where the
  // prefetched probes matter most — and where the locality model engages
  // radix pre-partitioning for the batch pass, exactly as the engine's
  // kAuto policy would.
  for (int64_t groups : {64LL, 4096LL, 262144LL}) {
    std::vector<uint8_t> raw(static_cast<size_t>(tuples) *
                             schema.tuple_size());
    Prng prng(42 + static_cast<uint64_t>(groups));
    for (int64_t i = 0; i < tuples; ++i) {
      int64_t g = static_cast<int64_t>(
          prng.NextBelow(static_cast<uint64_t>(groups)));
      int64_t v = static_cast<int64_t>(prng.NextBelow(1000));
      std::memcpy(raw.data() + i * 16, &g, 8);
      std::memcpy(raw.data() + i * 16 + 8, &v, 8);
    }

    // The same locality decision the engine's kAuto mode makes: the
    // group count is exact here, so the decision is too.
    // ADAPTAGG_BENCH_RADIX=off|on overrides it for A/B sweeps.
    const char* radix_env = std::getenv("ADAPTAGG_BENCH_RADIX");
    RadixMode mode = RadixMode::kAuto;
    if (radix_env != nullptr && std::strcmp(radix_env, "off") == 0) {
      mode = RadixMode::kOff;
    } else if (radix_env != nullptr && std::strcmp(radix_env, "on") == 0) {
      mode = RadixMode::kOn;
    }
    const RadixDecision radix = DecideRadixPartitioning(
        mode, groups, /*max_entries=*/groups,
        spec->key_width() + spec->state_width(), kDefaultL2Bytes,
        kDefaultLlcBytes);

    double scalar_s = 1e300;
    double batch_s = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      AggHashTable ts(&*spec, groups);
      scalar_s =
          std::min(scalar_s, RunScalarPass(*spec, schema, raw, tuples, ts));
      AggHashTable tb(&*spec, groups);
      if (radix.engage) tb.EnableRadixPartitioning(radix.partitions);
      batch_s =
          std::min(batch_s, RunBatchPass(*spec, schema, raw, tuples, tb));
    }
    const double scalar_tps = static_cast<double>(tuples) / scalar_s;
    const double batch_tps = static_cast<double>(tuples) / batch_s;
    table.AddRow({bench::FmtInt(groups),
                  radix.engage ? "P=" + bench::FmtInt(radix.partitions)
                               : std::string("off"),
                  bench::FmtSeconds(scalar_s), bench::FmtSeconds(batch_s),
                  bench::FmtSci(scalar_tps), bench::FmtSci(batch_tps),
                  bench::FmtSeconds(scalar_s / batch_s)});
    const std::string suffix = "/groups=" + std::to_string(groups);
    json.AddPoint("local_agg_scalar" + suffix, 0, scalar_s, scalar_tps);
    json.AddPoint("local_agg_batch" + suffix, 0, batch_s, batch_tps);
  }
  table.Print();
}

}  // namespace
}  // namespace adaptagg

int main(int argc, char** argv) {
  adaptagg::bench::SetBenchBinaryName(argv[0]);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  adaptagg::bench::BenchJsonWriter json(
      "micro_core",
      "COUNT+SUM GROUP BY int64, 16B tuples, scale=" +
          adaptagg::bench::FmtSeconds(adaptagg::bench::BenchScale()));
  adaptagg::RunLocalAggHarness(json);
  json.Write();
  return 0;
}
