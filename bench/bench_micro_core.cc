// Microbenchmarks of the hot building blocks (google-benchmark): the
// aggregation hash table, the spilling aggregator, page building, key
// hashing, and the workload generators.

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>

#include "agg/spilling_aggregator.h"
#include "common/random.h"
#include "storage/page.h"
#include "workload/distributions.h"

namespace adaptagg {
namespace {

void BM_HashTableUpsert(benchmark::State& state) {
  Schema schema({{"g", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}});
  auto spec = MakeCountSumSpec(&schema, 0, 1);
  const int64_t groups = state.range(0);
  AggHashTable table(&*spec, groups);
  uint8_t proj[16];
  int64_t v = 1;
  std::memcpy(proj + 8, &v, 8);
  int64_t g = 0;
  for (auto _ : state) {
    std::memcpy(proj, &g, 8);
    uint64_t h = spec->HashKey(proj);
    benchmark::DoNotOptimize(table.UpsertProjected(proj, h));
    g = (g + 1) % groups;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashTableUpsert)->Arg(64)->Arg(4096)->Arg(262144);

void BM_SpillingAggregatorOverflow(benchmark::State& state) {
  Schema schema({{"g", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}});
  auto spec = MakeCountSumSpec(&schema, 0, 1);
  const int64_t groups = state.range(0);
  uint8_t proj[16];
  int64_t v = 1;
  std::memcpy(proj + 8, &v, 8);
  for (auto _ : state) {
    state.PauseTiming();
    SimDisk disk(4096);
    SpillingAggregator agg(&*spec, &disk, /*max_entries=*/1024);
    state.ResumeTiming();
    for (int64_t i = 0; i < 100'000; ++i) {
      int64_t g = i % groups;
      std::memcpy(proj, &g, 8);
      benchmark::DoNotOptimize(agg.AddProjected(proj));
    }
    int64_t emitted = 0;
    Status st = agg.Finish(
        [&](const uint8_t*, const uint8_t*) { ++emitted; });
    benchmark::DoNotOptimize(st.ok());
    if (emitted != groups) state.SkipWithError("wrong group count");
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_SpillingAggregatorOverflow)->Arg(512)->Arg(8192)->Arg(65536);

void BM_PageBuildAndRead(benchmark::State& state) {
  PageBuilder builder(2048, 16);
  uint8_t rec[16] = {};
  const int cap = PageBuilder::Capacity(2048, 16);
  for (auto _ : state) {
    for (int i = 0; i < cap; ++i) builder.Append(rec);
    std::vector<uint8_t> page = builder.Finish();
    PageReader reader(page.data(), 2048, 16);
    int64_t sum = 0;
    for (int i = 0; i < reader.count(); ++i) {
      sum += reader.record(i)[0];
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * cap);
}
BENCHMARK(BM_PageBuildAndRead);

void BM_HashBytes(benchmark::State& state) {
  std::vector<uint8_t> key(static_cast<size_t>(state.range(0)), 0x3c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashBytes(key.data(), key.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashBytes)->Arg(8)->Arg(16)->Arg(64);

void BM_ZipfGenerator(benchmark::State& state) {
  ZipfGenerator zipf(1'000'000, 0.9, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfGenerator);

void BM_PrngNextBelow(benchmark::State& state) {
  Prng prng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prng.NextBelow(1'000'003));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrngNextBelow);

}  // namespace
}  // namespace adaptagg
