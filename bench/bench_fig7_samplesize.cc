// Reproduces Figure 7: the sample size / performance trade-off of the
// Sampling algorithm on the 32-processor configuration. Larger samples
// observe more distinct groups, raising the group count at which the
// coordinator still (correctly) chooses Repartitioning — at the price of
// a larger constant sampling cost.

#include "bench_util.h"

namespace adaptagg {
namespace bench {
namespace {

void Run() {
  SystemParams params = SystemParams::Paper32();
  PrintHeader("Figure 7", "The sample size, performance trade-off",
              params.ToString());

  const std::vector<int64_t> sample_sizes = {3'200,    10'000,  32'000,
                                             100'000, 320'000, 1'000'000};
  // Selectivities in the contested middle range around the crossover.
  const std::vector<double> selectivities = {4e-5, 4e-4, 4e-3, 4e-2};

  std::vector<std::string> cols = {"sample", "cost(s)"};
  for (double s : selectivities) cols.push_back("T@S=" + FmtSci(s));
  TablePrinter table(cols);

  for (int64_t sample : sample_sizes) {
    CostModel::Config cfg;
    cfg.params = params;
    cfg.sample_size = sample;
    CostModel model(cfg);
    std::vector<std::string> row = {
        FmtInt(sample),
        FmtSeconds(
            model.Breakdown(AlgorithmKind::kSampling, 4e-4).sample_cost)};
    for (double s : selectivities) {
      row.push_back(FmtSeconds(model.Time(AlgorithmKind::kSampling, s)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nExpected shape: total time first improves with sample size\n"
      "(fewer wrong algorithm picks near the threshold), then the\n"
      "sampling cost itself starts to dominate — the paper's trade-off\n"
      "between small samples on fast networks and larger ones on slow\n"
      "networks.\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptagg

int main(int, char** argv) {
  adaptagg::bench::SetBenchBinaryName(argv[0]);
  adaptagg::bench::Run();
  return 0;
}
