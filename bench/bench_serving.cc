// Serving-layer benchmark: QPS and submit-to-complete latency of a
// resident ClusterService under an open-loop multi-client load, across
// a client-count x cache-hit-ratio matrix. Distinct query fingerprints
// come from distinct WHERE literals: "hit" submissions draw from a
// small pool of shapes warmed into the result cache before measurement,
// "miss" submissions each carry a never-seen literal so they must
// execute on the data plane. Latencies are read off the tickets' wall
// stamps (EXPERIMENTS.md "Serving mode" has the methodology). Numbers
// go to BENCH_serving.json.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "exec/expression.h"
#include "serve/cluster_service.h"

namespace adaptagg {
namespace {

using bench::BenchJsonWriter;
using bench::FmtInt;
using bench::FmtSeconds;
using bench::TablePrinter;

constexpr int kQueriesPerClient = 16;
constexpr int kWarmShapes = 8;

/// One (clients, hit%) load point of the matrix.
struct LoadPoint {
  int clients;
  int hit_pct;  // share of submissions aimed at the warmed shape pool
};

/// WHERE g > w: the warm pool uses w in [0, kWarmShapes); misses use a
/// per-submission literal far outside it, so every miss is a distinct
/// fingerprint that can never have been cached.
AlgorithmOptions ShapeOptions(int64_t literal) {
  AlgorithmOptions options;
  options.where = Gt(Col(kBenchGroupCol), Lit(literal));
  return options;
}

struct PointOutcome {
  int completed = 0;
  int failed = 0;
  int cache_hits = 0;
  double elapsed_s = 0;
  double qps = 0;
  double p50_s = 0;
  double p95_s = 0;
  double p99_s = 0;
  MetricsSnapshot metrics;
  bool ok = false;
};

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t rank = static_cast<size_t>(q * static_cast<double>(
                          sorted.size() - 1));
  return sorted[rank];
}

PointOutcome RunPoint(const LoadPoint& load, PartitionedRelation& rel,
                      const SystemParams& params,
                      const AggregationSpec& spec) {
  PointOutcome out;

  ServiceConfig config;
  config.params = params;
  config.cache_entries = 512;        // nothing evicts during a point
  config.scheduler.max_inflight = 4;
  config.scheduler.queue_capacity = 256;  // open loop: never reject
  auto service = ClusterService::Start(config, &rel);
  if (!service.ok()) {
    std::fprintf(stderr, "start: %s\n",
                 service.status().ToString().c_str());
    return out;
  }

  // Warm the cache: execute each pool shape once, to completion.
  for (int w = 0; w < kWarmShapes; ++w) {
    ServeQuery query;
    query.spec = spec;
    query.options = ShapeOptions(w);
    auto ticket = (*service)->Submit(std::move(query));
    if (!ticket.ok() || !(*ticket)->Wait().status.ok()) return out;
  }

  // Open-loop measured phase: every client fires its whole script
  // without pacing, then everyone waits.
  const int total = load.clients * kQueriesPerClient;
  std::vector<QueryTicketPtr> tickets(static_cast<size_t>(total));
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(load.clients));
  for (int c = 0; c < load.clients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        ServeQuery query;
        query.spec = spec;
        // Deterministic hit/miss script: the first hit_pct% of each
        // client's positions go to the warm pool, the rest carry a
        // unique literal (groups never reach it, so the predicate
        // selects everything below it — a full execution).
        if (q < load.hit_pct * kQueriesPerClient / 100) {
          query.options = ShapeOptions(q % kWarmShapes);
        } else {
          query.options =
              ShapeOptions(1'000'000 + c * kQueriesPerClient + q);
        }
        auto ticket = (*service)->Submit(std::move(query));
        if (ticket.ok()) {
          tickets[static_cast<size_t>(c * kQueriesPerClient + q)] =
              *ticket;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  std::vector<double> latencies;
  double first_submit = 0, last_complete = 0;
  for (const QueryTicketPtr& ticket : tickets) {
    if (ticket == nullptr) {
      ++out.failed;
      continue;
    }
    const RunResult& run = ticket->Wait();
    if (!run.status.ok()) {
      ++out.failed;
      continue;
    }
    ++out.completed;
    if (run.from_cache) ++out.cache_hits;
    latencies.push_back(ticket->complete_wall_s() -
                        ticket->submit_wall_s());
    if (first_submit == 0 || ticket->submit_wall_s() < first_submit) {
      first_submit = ticket->submit_wall_s();
    }
    last_complete = std::max(last_complete, ticket->complete_wall_s());
  }
  std::sort(latencies.begin(), latencies.end());
  out.elapsed_s = last_complete - first_submit;
  out.qps = out.elapsed_s > 0 ? out.completed / out.elapsed_s : 0;
  out.p50_s = Percentile(latencies, 0.50);
  out.p95_s = Percentile(latencies, 0.95);
  out.p99_s = Percentile(latencies, 0.99);
  out.metrics = (*service)->Metrics();
  (*service)->Shutdown();
  out.ok = (*service)->resident_threads() == 0 && out.failed == 0;
  return out;
}

}  // namespace
}  // namespace adaptagg

int main(int argc, char** argv) {
  using namespace adaptagg;
  (void)argc;
  bench::SetBenchBinaryName(argv[0]);

  const double scale = bench::BenchScale();
  const int nodes = 4;
  const int64_t tuples = static_cast<int64_t>(40'000 * scale);
  const int64_t groups = 2'000;

  WorkloadSpec workload;
  workload.num_nodes = nodes;
  workload.num_tuples = tuples;
  workload.num_groups = groups;
  auto rel = GenerateRelation(workload);
  if (!rel.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 rel.status().ToString().c_str());
    return 1;
  }
  auto spec = MakeBenchQuery(&rel->schema());
  if (!spec.ok()) return 1;

  SystemParams params;
  params.num_nodes = nodes;
  params.num_tuples = tuples;
  params.max_hash_entries = 1'000;
  params.network = NetworkKind::kHighBandwidth;

  const std::string config_line =
      "nodes=" + std::to_string(nodes) + " tuples=" +
      std::to_string(tuples) + " groups=" + std::to_string(groups) +
      " queries/client=" + std::to_string(kQueriesPerClient) +
      " max_inflight=4";
  bench::PrintHeader(
      "serving",
      "resident multi-query serving: QPS and latency percentiles under "
      "an open-loop client matrix",
      config_line);

  const LoadPoint kMatrix[] = {
      {1, 0}, {4, 0}, {8, 0}, {4, 50}, {4, 90},
  };

  TablePrinter table({"clients", "hit%", "done", "hits", "qps",
                      "p50 s", "p95 s", "p99 s"});
  BenchJsonWriter json("serving", config_line);
  bool all_ok = true;
  for (const LoadPoint& load : kMatrix) {
    PointOutcome out = RunPoint(load, *rel, params, *spec);
    all_ok = all_ok && out.ok;
    table.AddRow({FmtInt(load.clients), FmtInt(load.hit_pct),
                  FmtInt(out.completed), FmtInt(out.cache_hits),
                  FmtSeconds(out.qps), FmtSeconds(out.p50_s),
                  FmtSeconds(out.p95_s), FmtSeconds(out.p99_s)});
    const std::string base = "c" + std::to_string(load.clients) +
                             "_hit" + std::to_string(load.hit_pct);
    // One throughput point (tuples_per_sec carries QPS) plus one point
    // per latency percentile (wall_time_s carries the latency).
    json.AddPoint(base + "_qps", 0, out.elapsed_s, out.qps);
    json.AddPoint(base + "_p50", 0, out.p50_s, 0);
    json.AddPoint(base + "_p95", 0, out.p95_s, 0);
    json.AddPoint(base + "_p99", 0, out.p99_s, 0);
    json.MergeMetrics(out.metrics);
  }
  table.Print();
  if (!json.Write()) return 1;
  if (!all_ok) {
    std::fprintf(stderr, "serving bench: failures or leaked threads\n");
    return 1;
  }
  return 0;
}
