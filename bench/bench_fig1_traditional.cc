// Reproduces Figure 1: the performance of the traditional algorithms
// (Centralized Two Phase, Two Phase, Repartitioning) on the 32-processor
// one-disk-per-node configuration, across the full grouping-selectivity
// range. Repartitioning is shown on both the high-bandwidth (IBM SP-2
// class) and the limited-bandwidth (Ethernet class) interconnect, which
// is the comparison the section draws.

#include "bench_util.h"

namespace adaptagg {
namespace bench {
namespace {

void Run() {
  CostModel::Config high_cfg;
  high_cfg.params = SystemParams::Paper32();
  CostModel high(high_cfg);

  CostModel::Config low_cfg = high_cfg;
  low_cfg.params.network = NetworkKind::kLimitedBandwidth;
  CostModel low(low_cfg);

  PrintHeader("Figure 1", "The Performance of Traditional Algorithms",
              high_cfg.params.ToString());

  TablePrinter table({"S", "groups", "C-2P(s)", "2P(s)", "Rep-fast(s)",
                      "Rep-slow(s)"});
  for (double s : SelectivitySweep(high_cfg.params.num_tuples)) {
    int64_t groups = static_cast<int64_t>(
        std::max(1.0, s * static_cast<double>(high_cfg.params.num_tuples)));
    table.AddRow(
        {FmtSci(s), FmtInt(groups),
         FmtSeconds(high.Time(AlgorithmKind::kCentralizedTwoPhase, s)),
         FmtSeconds(high.Time(AlgorithmKind::kTwoPhase, s)),
         FmtSeconds(high.Time(AlgorithmKind::kRepartitioning, s)),
         FmtSeconds(low.Time(AlgorithmKind::kRepartitioning, s))});
  }
  table.Print();
  std::printf(
      "\nExpected shape: 2P wins at low S; Rep (fast net) wins at high S;\n"
      "C-2P's coordinator blows up with the group count; Rep on a slow\n"
      "network pays a constant heavy repartitioning tax.\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptagg

int main(int, char** argv) {
  adaptagg::bench::SetBenchBinaryName(argv[0]);
  adaptagg::bench::Run();
  return 0;
}
