// Engine-side companion to Figure 3: the adaptive algorithms vs the
// static ones on a HIGH-bandwidth network, measured by executing the
// algorithms (the paper's Figure 3 is analytical; this binary shows the
// execution engine reproduces the same tracking behavior end to end).
//
// ADAPTAGG_BENCH_SCALE scales the tuple count and M together.

#include "bench_util.h"

namespace adaptagg {
namespace bench {
namespace {

void Run() {
  const double scale = BenchScale();
  SystemParams params = SystemParams::Cluster8();
  params.network = NetworkKind::kHighBandwidth;
  params.msg_latency_s = 2.0e-3;  // SP-2-class latency, as in Table 1
  params.num_tuples =
      static_cast<int64_t>(static_cast<double>(params.num_tuples) * scale);
  params.max_hash_entries = std::max<int64_t>(
      64, static_cast<int64_t>(
              static_cast<double>(params.max_hash_entries) * scale));

  PrintHeader("Figure 3 (engine)",
              "adaptive vs static algorithms, high-bandwidth, executed",
              params.ToString() + " scale=" + FmtSeconds(scale));

  std::vector<std::string> cols = {"S", "groups"};
  for (AlgorithmKind kind : Figure8Algorithms()) {
    cols.push_back(AlgorithmKindToString(kind) + "(s)");
  }
  cols.push_back("worst-adaptive/best-static");
  TablePrinter table(cols);
  BenchJsonWriter json("fig3_engine",
                       params.ToString() + " scale=" + FmtSeconds(scale));

  Cluster cluster(params);
  for (double s : SelectivitySweep(params.num_tuples)) {
    int64_t groups = std::max<int64_t>(
        1, static_cast<int64_t>(s * static_cast<double>(params.num_tuples)));
    WorkloadSpec wspec;
    wspec.num_nodes = params.num_nodes;
    wspec.num_tuples = params.num_tuples;
    wspec.num_groups = groups;
    wspec.seed = 3 + static_cast<uint64_t>(groups);
    auto rel = GenerateRelation(wspec);
    if (!rel.ok()) return;
    auto spec = MakeBenchQuery(&rel->schema());
    if (!spec.ok()) return;

    AlgorithmOptions opts;
    opts.gather_results = false;
    std::vector<std::string> row = {FmtSci(s), FmtInt(groups)};
    double static_best = 0, adaptive_worst = 0;
    for (AlgorithmKind kind : Figure8Algorithms()) {
      EngineRunOutcome out = RunEngine(cluster, kind, *spec, *rel, opts);
      row.push_back(out.ok ? FmtSeconds(out.sim_time_s) : "ERR");
      if (!out.ok) continue;
      json.MergeMetrics(out.metrics);
      json.AddPoint(
          AlgorithmKindToString(kind) + "/S=" + FmtSci(s), out.sim_time_s,
          out.wall_time_s,
          out.wall_time_s > 0
              ? static_cast<double>(params.num_tuples) / out.wall_time_s
              : 0);
      if (kind == AlgorithmKind::kTwoPhase ||
          kind == AlgorithmKind::kRepartitioning) {
        static_best = static_best == 0
                          ? out.sim_time_s
                          : std::min(static_best, out.sim_time_s);
      } else {
        adaptive_worst = std::max(adaptive_worst, out.sim_time_s);
      }
    }
    row.push_back(FmtSeconds(adaptive_worst / static_best));
    table.AddRow(std::move(row));
  }
  table.Print();
  json.Write();
  std::printf(
      "\nExpected shape (paper Fig. 3): with a fast network the ratio\n"
      "column stays close to 1 across the entire selectivity range — the\n"
      "adaptive algorithms track whichever static algorithm wins, paying\n"
      "at most a small overhead near the crossover.\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptagg

int main(int, char** argv) {
  adaptagg::bench::SetBenchBinaryName(argv[0]);
  adaptagg::bench::Run();
  return 0;
}
