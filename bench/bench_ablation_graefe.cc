// Ablation: Adaptive Two Phase vs Graefe's optimized Two Phase ([Gra93],
// argued against in §3.2) vs plain Two Phase, on the engine. The paper's
// three objections to the Graefe optimization: tuples forwarded to a
// destination with no matching entry buy nothing; all tuples pass
// through both phases; and the local table's memory is never freed.

#include "bench_util.h"

namespace adaptagg {
namespace bench {
namespace {

void Run() {
  const double scale = BenchScale();
  SystemParams params = SystemParams::Cluster8();
  params.num_tuples = static_cast<int64_t>(500'000 * scale);
  params.max_hash_entries =
      std::max<int64_t>(64, static_cast<int64_t>(2'500 * scale));

  PrintHeader("Ablation: A-2P vs Graefe-optimized 2P",
              "modeled time across grouping selectivities",
              params.ToString() + " scale=" + FmtSeconds(scale));

  TablePrinter table({"S", "groups", "2P(s)", "Opt-2P(s)", "A-2P(s)",
                      "Opt-2P spill", "A-2P spill"});
  Cluster cluster(params);
  for (double s : SelectivitySweep(params.num_tuples)) {
    int64_t groups = std::max<int64_t>(
        1, static_cast<int64_t>(s * static_cast<double>(params.num_tuples)));
    WorkloadSpec wspec;
    wspec.num_nodes = params.num_nodes;
    wspec.num_tuples = params.num_tuples;
    wspec.num_groups = groups;
    wspec.seed = 77 + static_cast<uint64_t>(groups);
    auto rel = GenerateRelation(wspec);
    if (!rel.ok()) return;
    auto spec = MakeBenchQuery(&rel->schema());
    if (!spec.ok()) return;

    AlgorithmOptions opts;
    opts.gather_results = false;
    EngineRunOutcome tp =
        RunEngine(cluster, AlgorithmKind::kTwoPhase, *spec, *rel, opts);
    EngineRunOutcome graefe = RunEngine(
        cluster, AlgorithmKind::kGraefeTwoPhase, *spec, *rel, opts);
    EngineRunOutcome a2p = RunEngine(
        cluster, AlgorithmKind::kAdaptiveTwoPhase, *spec, *rel, opts);
    table.AddRow({FmtSci(s), FmtInt(groups),
                  tp.ok ? FmtSeconds(tp.sim_time_s) : "ERR",
                  graefe.ok ? FmtSeconds(graefe.sim_time_s) : "ERR",
                  a2p.ok ? FmtSeconds(a2p.sim_time_s) : "ERR",
                  FmtInt(graefe.spilled_records),
                  FmtInt(a2p.spilled_records)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: both beat plain 2P once tables overflow; A-2P\n"
      "at least matches Opt-2P at high selectivity (it stops paying the\n"
      "double-phase tax and frees the local table), which is the §3.2\n"
      "argument for preferring the adaptive switch over the\n"
      "forward-on-overflow optimization.\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptagg

int main(int, char** argv) {
  adaptagg::bench::SetBenchBinaryName(argv[0]);
  adaptagg::bench::Run();
  return 0;
}
