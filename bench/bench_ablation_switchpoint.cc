// Ablation: where should Adaptive Two Phase switch? The paper argues the
// memory-overflow point (table full, fraction 1.0) is right: switching
// earlier throws away cheap local aggregation; there is no "later" —
// staying past overflow is what plain 2P does (intermediate I/O). This
// bench sweeps the switch threshold as a fraction of M on the engine.

#include "bench_util.h"

namespace adaptagg {
namespace bench {
namespace {

void Run() {
  const double scale = BenchScale();
  SystemParams params = SystemParams::Cluster8();
  params.num_tuples = static_cast<int64_t>(500'000 * scale);
  params.max_hash_entries =
      std::max<int64_t>(64, static_cast<int64_t>(2'500 * scale));

  PrintHeader("Ablation: A-2P switch point",
              "modeled time vs switch threshold (fraction of M)",
              params.ToString() + " scale=" + FmtSeconds(scale));

  const std::vector<double> fractions = {0.05, 0.1, 0.25, 0.5, 0.75, 1.0};
  const std::vector<int64_t> group_counts = {
      100, params.max_hash_entries / 2, params.max_hash_entries * 4,
      params.num_tuples / 8};

  std::vector<std::string> cols = {"fraction"};
  for (int64_t g : group_counts) cols.push_back("G=" + FmtInt(g) + "(s)");
  TablePrinter table(cols);

  Cluster cluster(params);
  for (double fraction : fractions) {
    std::vector<std::string> row = {FmtSeconds(fraction)};
    for (int64_t groups : group_counts) {
      WorkloadSpec wspec;
      wspec.num_nodes = params.num_nodes;
      wspec.num_tuples = params.num_tuples;
      wspec.num_groups = groups;
      wspec.seed = 1234;
      auto rel = GenerateRelation(wspec);
      if (!rel.ok()) return;
      auto spec = MakeBenchQuery(&rel->schema());
      if (!spec.ok()) return;
      AlgorithmOptions opts;
      opts.switch_fill_fraction = fraction;
      opts.gather_results = false;
      EngineRunOutcome out = RunEngine(
          cluster, AlgorithmKind::kAdaptiveTwoPhase, *spec, *rel, opts);
      row.push_back(out.ok ? FmtSeconds(out.sim_time_s) : "ERR");
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nExpected shape: at small G every fraction behaves like 2P (no\n"
      "switch); at large G, early switching (small fractions) wastes the\n"
      "local-aggregation benefit on repeated groups, so fraction 1.0 —\n"
      "the paper's overflow-point rule — is at or near the minimum in\n"
      "every column.\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptagg

int main(int, char** argv) {
  adaptagg::bench::SetBenchBinaryName(argv[0]);
  adaptagg::bench::Run();
  return 0;
}
