// Reproduces Figure 3: relative performance of the new approaches
// (Sampling, Adaptive Two Phase, Adaptive Repartitioning) against the
// traditional Two Phase and Repartitioning, on the standard 32-processor
// configuration with a high-speed, high-bandwidth network.

#include "bench_util.h"

namespace adaptagg {
namespace bench {
namespace {

void Run() {
  CostModel::Config cfg;
  cfg.params = SystemParams::Paper32();
  CostModel model(cfg);

  PrintHeader("Figure 3", "Relative Performance of the Approaches",
              cfg.params.ToString());

  TablePrinter table({"S", "2P(s)", "Rep(s)", "Samp(s)", "A-2P(s)",
                      "A-Rep(s)", "best-static", "worst-adaptive/best"});
  for (double s : SelectivitySweep(cfg.params.num_tuples)) {
    double tp = model.Time(AlgorithmKind::kTwoPhase, s);
    double rep = model.Time(AlgorithmKind::kRepartitioning, s);
    double samp = model.Time(AlgorithmKind::kSampling, s);
    double a2p = model.Time(AlgorithmKind::kAdaptiveTwoPhase, s);
    double arep = model.Time(AlgorithmKind::kAdaptiveRepartitioning, s);
    double best = std::min(tp, rep);
    double worst_adaptive = std::max({samp, a2p, arep});
    table.AddRow({FmtSci(s), FmtSeconds(tp), FmtSeconds(rep),
                  FmtSeconds(samp), FmtSeconds(a2p), FmtSeconds(arep),
                  FmtSeconds(best),
                  FmtSeconds(worst_adaptive / best)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: all three new algorithms track the better of\n"
      "2P/Rep across the whole range (ratio column stays near 1.0);\n"
      "Sampling carries a small constant estimation overhead; A-Rep\n"
      "trails slightly at very low S (under-used processors before the\n"
      "switch).\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptagg

int main(int, char** argv) {
  adaptagg::bench::SetBenchBinaryName(argv[0]);
  adaptagg::bench::Run();
  return 0;
}
