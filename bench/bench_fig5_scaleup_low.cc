// Reproduces Figure 5: scaleup at very low grouping selectivity
// (S = 2.0e-6). The relation grows with the cluster (constant 250K
// tuples per node, as in Table 1); ideal scaleup is a flat line.

#include "bench_util.h"

namespace adaptagg {
namespace bench {
namespace {

constexpr double kSelectivity = 2.0e-6;
constexpr int64_t kTuplesPerNode = 250'000;

void Run() {
  SystemParams base = SystemParams::Paper32();
  PrintHeader("Figure 5",
              "Scaleup of Algorithms: selectivity = 2.0e-6",
              "|R| = 250K tuples * N, high-bandwidth network");

  TablePrinter table({"N", "|R|", "2P(s)", "Rep(s)", "Samp(s)", "A-2P(s)",
                      "A-Rep(s)"});
  for (int n : {1, 2, 4, 8, 16, 32, 64, 128}) {
    CostModel::Config cfg;
    cfg.params = base;
    cfg.params.num_nodes = n;
    cfg.params.num_tuples = kTuplesPerNode * n;
    CostModel model(cfg);
    table.AddRow(
        {FmtInt(n), FmtInt(cfg.params.num_tuples),
         FmtSeconds(model.Time(AlgorithmKind::kTwoPhase, kSelectivity)),
         FmtSeconds(
             model.Time(AlgorithmKind::kRepartitioning, kSelectivity)),
         FmtSeconds(model.Time(AlgorithmKind::kSampling, kSelectivity)),
         FmtSeconds(
             model.Time(AlgorithmKind::kAdaptiveTwoPhase, kSelectivity)),
         FmtSeconds(model.Time(AlgorithmKind::kAdaptiveRepartitioning,
                               kSelectivity))});
  }
  table.Print();
  std::printf(
      "\nExpected shape: A-2P and A-Rep nearly flat (ideal scaleup);\n"
      "Sampling slightly rising (its crossover threshold, and therefore\n"
      "its sample, grows with N); plain Rep suffers at small group\n"
      "counts.\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptagg

int main(int, char** argv) {
  adaptagg::bench::SetBenchBinaryName(argv[0]);
  adaptagg::bench::Run();
  return 0;
}
