// Reproduces Figure 2: the same traditional algorithms evaluated in an
// operator pipeline — no base-relation scan and no result store, as when
// the aggregate sits between other operators. Intermediate (overflow)
// I/O still counts; that is exactly what the figure exposes: without the
// scan floor, the Repartitioning algorithm's advantage at high
// selectivity is much starker.

#include "bench_util.h"

namespace adaptagg {
namespace bench {
namespace {

void Run() {
  CostModel::Config cfg;
  cfg.params = SystemParams::Paper32();
  cfg.include_scan_io = false;
  cfg.include_store_io = false;
  CostModel model(cfg);

  PrintHeader("Figure 2", "The Performance in an Operator Pipeline",
              cfg.params.ToString() + " [no scan/store I/O]");

  TablePrinter table({"S", "groups", "C-2P(s)", "2P(s)", "Rep(s)"});
  for (double s : SelectivitySweep(cfg.params.num_tuples)) {
    int64_t groups = static_cast<int64_t>(
        std::max(1.0, s * static_cast<double>(cfg.params.num_tuples)));
    table.AddRow(
        {FmtSci(s), FmtInt(groups),
         FmtSeconds(model.Time(AlgorithmKind::kCentralizedTwoPhase, s)),
         FmtSeconds(model.Time(AlgorithmKind::kTwoPhase, s)),
         FmtSeconds(model.Time(AlgorithmKind::kRepartitioning, s))});
  }
  table.Print();
  std::printf(
      "\nExpected shape: without the scan floor the two-phase variants'\n"
      "intermediate I/O dominates at high S, motivating Repartitioning\n"
      "even on pipelines (§2, Figure 2).\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptagg

int main(int, char** argv) {
  adaptagg::bench::SetBenchBinaryName(argv[0]);
  adaptagg::bench::Run();
  return 0;
}
