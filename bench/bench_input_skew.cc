// §6.1 companion experiment: input skew. One node holds `factor` times
// the tuples of the others; the skewed node's extra scan I/O and
// processing bound the completion time for every algorithm (the paper's
// qualitative discussion — there is no corresponding figure, so this
// bench documents the claimed behavior on the engine).

#include "bench_util.h"

namespace adaptagg {
namespace bench {
namespace {

void Run() {
  const double scale = BenchScale();
  SystemParams params = SystemParams::Cluster8();
  params.num_tuples = static_cast<int64_t>(500'000 * scale);
  params.max_hash_entries =
      std::max<int64_t>(64, static_cast<int64_t>(2'500 * scale));

  PrintHeader("Input skew (§6.1)",
              "modeled time vs input skew factor, one skewed node",
              params.ToString() + " scale=" + FmtSeconds(scale));

  for (int64_t groups :
       {static_cast<int64_t>(100), params.num_tuples / 8}) {
    std::printf("--- groups = %lld (%s selectivity) ---\n",
                static_cast<long long>(groups),
                groups <= 1'000 ? "low" : "high");
    std::vector<std::string> cols = {"factor"};
    for (AlgorithmKind kind : Figure8Algorithms()) {
      cols.push_back(AlgorithmKindToString(kind) + "(s)");
    }
    TablePrinter table(cols);
    Cluster cluster(params);
    for (double factor : {1.0, 2.0, 4.0, 8.0}) {
      WorkloadSpec wspec;
      wspec.num_nodes = params.num_nodes;
      wspec.num_tuples = params.num_tuples;
      wspec.num_groups = groups;
      wspec.input_skew_factor = factor;
      wspec.input_skew_nodes = 1;
      wspec.seed = 61;
      auto rel = GenerateRelation(wspec);
      if (!rel.ok()) return;
      auto spec = MakeBenchQuery(&rel->schema());
      if (!spec.ok()) return;
      std::vector<std::string> row = {FmtSeconds(factor)};
      AlgorithmOptions opts;
      opts.gather_results = false;
      for (AlgorithmKind kind : Figure8Algorithms()) {
        EngineRunOutcome out = RunEngine(cluster, kind, *spec, *rel, opts);
        row.push_back(out.ok ? FmtSeconds(out.sim_time_s) : "ERR");
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "Expected shape: times grow roughly linearly with the skewed\n"
      "node's share for every algorithm (input skew hits the scan, which\n"
      "nobody can shed); Rep is hurt slightly less at high selectivity\n"
      "because it offloads the aggregation work, as §6.1 argues.\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptagg

int main(int, char** argv) {
  adaptagg::bench::SetBenchBinaryName(argv[0]);
  adaptagg::bench::Run();
  return 0;
}
