// Reproduces Figure 6: scaleup at high grouping selectivity (S = 0.25),
// the duplicate-elimination end of the spectrum. Constant 250K tuples
// per node; ideal scaleup is a flat line.

#include "bench_util.h"

namespace adaptagg {
namespace bench {
namespace {

constexpr double kSelectivity = 0.25;
constexpr int64_t kTuplesPerNode = 250'000;

void Run() {
  SystemParams base = SystemParams::Paper32();
  PrintHeader("Figure 6", "Scaleup of Algorithms: selectivity = 0.25",
              "|R| = 250K tuples * N, high-bandwidth network");

  TablePrinter table({"N", "|R|", "2P(s)", "Rep(s)", "Samp(s)", "A-2P(s)",
                      "A-Rep(s)"});
  for (int n : {1, 2, 4, 8, 16, 32, 64, 128}) {
    CostModel::Config cfg;
    cfg.params = base;
    cfg.params.num_nodes = n;
    cfg.params.num_tuples = kTuplesPerNode * n;
    CostModel model(cfg);
    table.AddRow(
        {FmtInt(n), FmtInt(cfg.params.num_tuples),
         FmtSeconds(model.Time(AlgorithmKind::kTwoPhase, kSelectivity)),
         FmtSeconds(
             model.Time(AlgorithmKind::kRepartitioning, kSelectivity)),
         FmtSeconds(model.Time(AlgorithmKind::kSampling, kSelectivity)),
         FmtSeconds(
             model.Time(AlgorithmKind::kAdaptiveTwoPhase, kSelectivity)),
         FmtSeconds(model.Time(AlgorithmKind::kAdaptiveRepartitioning,
                               kSelectivity))});
  }
  table.Print();
  std::printf(
      "\nExpected shape: A-2P switches to repartitioning and A-Rep stays\n"
      "with it, so both stay near-flat and near Rep; plain 2P is the\n"
      "clear loser here (duplicated work plus overflow I/O).\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptagg

int main(int, char** argv) {
  adaptagg::bench::SetBenchBinaryName(argv[0]);
  adaptagg::bench::Run();
  return 0;
}
