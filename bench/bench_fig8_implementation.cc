// Reproduces Figure 8: the implementation study. Eight shared-nothing
// nodes (threads + message channels standing in for the paper's
// SparcServer/PVM cluster), 2 million 100-byte tuples partitioned
// round-robin, messages blocked into 2 KB pages, 10 Mbit/s-class shared
// network. All five parallel algorithms, modeled completion time vs.
// grouping selectivity.
//
// ADAPTAGG_BENCH_SCALE scales the tuple count (and the hash-table bound
// with it) for quick runs; 1.0 = the paper's full workload.

#include "bench_util.h"

namespace adaptagg {
namespace bench {
namespace {

void Run() {
  const double scale = BenchScale();
  SystemParams params = SystemParams::Cluster8();
  params.num_tuples =
      static_cast<int64_t>(static_cast<double>(params.num_tuples) * scale);
  params.max_hash_entries = std::max<int64_t>(
      64, static_cast<int64_t>(
              static_cast<double>(params.max_hash_entries) * scale));

  PrintHeader("Figure 8",
              "Relative Performance of the Approaches (implementation)",
              params.ToString() + " scale=" + FmtSeconds(scale));

  std::vector<std::string> cols = {"S", "groups"};
  for (AlgorithmKind kind : Figure8Algorithms()) {
    cols.push_back(AlgorithmKindToString(kind) + "(s)");
  }
  cols.push_back("A-2P switched");
  TablePrinter table(cols);

  Cluster cluster(params);
  for (double s : SelectivitySweep(params.num_tuples)) {
    int64_t groups = std::max<int64_t>(
        1, static_cast<int64_t>(s * static_cast<double>(params.num_tuples)));
    WorkloadSpec wspec;
    wspec.num_nodes = params.num_nodes;
    wspec.num_tuples = params.num_tuples;
    wspec.num_groups = groups;
    wspec.seed = 8 + static_cast<uint64_t>(groups);
    auto rel = GenerateRelation(wspec);
    if (!rel.ok()) {
      std::fprintf(stderr, "generate failed: %s\n",
                   rel.status().ToString().c_str());
      return;
    }
    auto spec = MakeBenchQuery(&rel->schema());
    if (!spec.ok()) return;

    std::vector<std::string> row = {FmtSci(s), FmtInt(groups)};
    int a2p_switched = 0;
    AlgorithmOptions opts;
    opts.gather_results = false;
    for (AlgorithmKind kind : Figure8Algorithms()) {
      EngineRunOutcome out = RunEngine(cluster, kind, *spec, *rel, opts);
      row.push_back(out.ok ? FmtSeconds(out.sim_time_s) : "ERR");
      if (kind == AlgorithmKind::kAdaptiveTwoPhase) {
        a2p_switched = out.nodes_switched;
      }
    }
    row.push_back(FmtInt(a2p_switched));
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Fig. 8, low-bandwidth cluster): 2P and the\n"
      "algorithms that behave like it win until the hash tables\n"
      "overflow; beyond that A-2P switches (column on the right) and\n"
      "tracks the better strategy; Rep pays the shared-network tax at\n"
      "low S but closes the gap at very high S.\n");
}

}  // namespace
}  // namespace bench
}  // namespace adaptagg

int main(int, char** argv) {
  adaptagg::bench::SetBenchBinaryName(argv[0]);
  adaptagg::bench::Run();
  return 0;
}
