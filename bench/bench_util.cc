#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace adaptagg {
namespace bench {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> width(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf("%-*s%s", static_cast<int>(width[c]), cell.c_str(),
                  c + 1 < columns_.size() ? "  " : "");
    }
    std::printf("\n");
  };
  print_row(columns_);
  std::string sep;
  for (size_t c = 0; c < columns_.size(); ++c) {
    sep.append(width[c], '-');
    if (c + 1 < columns_.size()) sep.append("  ");
  }
  std::printf("%s\n", sep.c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string FmtSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", s);
  return buf;
}

std::string FmtSci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

std::string FmtInt(int64_t v) { return std::to_string(v); }

std::vector<double> SelectivitySweep(int64_t num_tuples, int per_decade) {
  std::vector<double> out;
  double lo = 1.0 / static_cast<double>(num_tuples);
  double step = std::pow(10.0, 1.0 / per_decade);
  for (double s = lo; s < 0.5; s *= step) out.push_back(s);
  out.push_back(0.5);
  return out;
}

double BenchScale() {
  const char* env = std::getenv("ADAPTAGG_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

EngineRunOutcome RunEngine(Cluster& cluster, AlgorithmKind kind,
                           const AggregationSpec& spec,
                           PartitionedRelation& rel,
                           const AlgorithmOptions& options) {
  EngineRunOutcome out;
  RunResult run = cluster.Run(*MakeAlgorithm(kind), spec, rel, options);
  if (!run.status.ok()) {
    std::fprintf(stderr, "engine run %s failed: %s\n",
                 AlgorithmKindToString(kind).c_str(),
                 run.status.ToString().c_str());
    return out;
  }
  out.ok = true;
  out.sim_time_s = run.sim_time_s;
  out.wall_time_s = run.wall_time_s;
  out.nodes_switched = run.nodes_switched();
  out.spilled_records = run.total_spilled_records();
  return out;
}

void PrintHeader(const std::string& figure, const std::string& description,
                 const std::string& config) {
  std::printf("=== %s: %s ===\n", figure.c_str(), description.c_str());
  std::printf("config: %s\n\n", config.c_str());
}

}  // namespace bench
}  // namespace adaptagg
