#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/simd.h"

namespace adaptagg {
namespace bench {
namespace {

std::string& BinaryNameStorage() {
  static std::string name = "unknown";
  return name;
}

}  // namespace

void SetBenchBinaryName(const char* argv0) {
  if (argv0 == nullptr || *argv0 == '\0') return;
  std::string s(argv0);
  const size_t slash = s.find_last_of('/');
  BinaryNameStorage() =
      slash == std::string::npos ? s : s.substr(slash + 1);
}

std::string BenchBinaryName() { return BinaryNameStorage(); }

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> width(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf("%-*s%s", static_cast<int>(width[c]), cell.c_str(),
                  c + 1 < columns_.size() ? "  " : "");
    }
    std::printf("\n");
  };
  print_row(columns_);
  std::string sep;
  for (size_t c = 0; c < columns_.size(); ++c) {
    sep.append(width[c], '-');
    if (c + 1 < columns_.size()) sep.append("  ");
  }
  std::printf("%s\n", sep.c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string FmtSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", s);
  return buf;
}

std::string FmtSci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

std::string FmtInt(int64_t v) { return std::to_string(v); }

std::vector<double> SelectivitySweep(int64_t num_tuples, int per_decade) {
  std::vector<double> out;
  double lo = 1.0 / static_cast<double>(num_tuples);
  double step = std::pow(10.0, 1.0 / per_decade);
  for (double s = lo; s < 0.5; s *= step) out.push_back(s);
  out.push_back(0.5);
  return out;
}

double BenchScale() {
  const char* env = std::getenv("ADAPTAGG_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

EngineRunOutcome RunEngine(Cluster& cluster, AlgorithmKind kind,
                           const AggregationSpec& spec,
                           PartitionedRelation& rel,
                           const AlgorithmOptions& options,
                           const std::string& trace_label) {
  EngineRunOutcome out;
  const char* trace_dir = std::getenv("ADAPTAGG_TRACE_DIR");
  AlgorithmOptions opts = options;
  if (trace_dir != nullptr) {
    opts.obs.spans = true;
    opts.obs.traces = true;
  }
  RunResult run = cluster.Run(*MakeAlgorithm(kind), spec, rel, opts);
  if (!run.status.ok()) {
    std::fprintf(stderr, "engine run %s failed: %s\n",
                 AlgorithmKindToString(kind).c_str(),
                 run.status.ToString().c_str());
    return out;
  }
  if (trace_dir != nullptr) {
    const std::string label =
        trace_label.empty() ? AlgorithmKindToString(kind) : trace_label;
    const std::string path =
        std::string(trace_dir) + "/TRACE_" + label + ".json";
    Status st =
        WriteChromeTrace(run.trace_events, run.num_nodes, path);
    if (!st.ok()) {
      std::fprintf(stderr, "trace export to %s failed: %s\n", path.c_str(),
                   st.ToString().c_str());
    }
  }
  out.ok = true;
  out.sim_time_s = run.sim_time_s;
  out.wall_time_s = run.wall_time_s;
  out.nodes_switched = run.nodes_switched();
  out.spilled_records = run.total_spilled_records();
  out.metrics = std::move(run.metrics);
  return out;
}

void PrintHeader(const std::string& figure, const std::string& description,
                 const std::string& config) {
  std::printf("=== %s: %s ===\n", figure.c_str(), description.c_str());
  std::printf("config: %s\n\n", config.c_str());
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

BenchJsonWriter::BenchJsonWriter(std::string bench_id, std::string config)
    : bench_id_(std::move(bench_id)), config_(std::move(config)) {}

void BenchJsonWriter::AddPoint(const std::string& name, double sim_time_s,
                               double wall_time_s, double tuples_per_sec) {
  points_.push_back({name, sim_time_s, wall_time_s, tuples_per_sec});
}

void BenchJsonWriter::MergeMetrics(const MetricsSnapshot& metrics) {
  metrics_.Merge(metrics);
}

bool BenchJsonWriter::Write(const std::string& dir) const {
  std::string out_dir = dir;
  if (out_dir.empty()) {
    const char* env = std::getenv("ADAPTAGG_BENCH_JSON_DIR");
    out_dir = env != nullptr ? env : ".";
  }
  const std::string path = out_dir + "/BENCH_" + bench_id_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"%s\",\n  \"schema_version\": %d,\n"
               "  \"bench_binary\": \"%s\",\n  \"cpu_dispatch\": \"%s\",\n"
               "  \"config\": \"%s\",\n",
               JsonEscape(bench_id_).c_str(), kBenchJsonSchemaVersion,
               JsonEscape(BenchBinaryName()).c_str(), simd::DispatchName(),
               JsonEscape(config_).c_str());
  std::fprintf(f, "  \"points\": [\n");
  for (size_t i = 0; i < points_.size(); ++i) {
    const Point& pt = points_[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"sim_time_s\": %s, "
                 "\"wall_time_s\": %s, \"tuples_per_sec\": %s}%s\n",
                 JsonEscape(pt.name).c_str(),
                 JsonNumber(pt.sim_time_s).c_str(),
                 JsonNumber(pt.wall_time_s).c_str(),
                 JsonNumber(pt.tuples_per_sec).c_str(),
                 i + 1 < points_.size() ? "," : "");
  }
  if (metrics_.empty()) {
    std::fprintf(f, "  ]\n}\n");
  } else {
    std::fprintf(f, "  ],\n  \"metrics\": %s\n}\n",
                 MetricsToJson(metrics_, 4).c_str());
  }
  const bool ok = std::fclose(f) == 0;
  if (ok) std::printf("\nwrote %s\n", path.c_str());
  return ok;
}

}  // namespace bench
}  // namespace adaptagg
