# Empty dependencies file for adaptagg_cli.
# This may be replaced when dependencies are built.
