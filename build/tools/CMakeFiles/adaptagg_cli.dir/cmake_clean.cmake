file(REMOVE_RECURSE
  "CMakeFiles/adaptagg_cli.dir/adaptagg_cli.cc.o"
  "CMakeFiles/adaptagg_cli.dir/adaptagg_cli.cc.o.d"
  "adaptagg_cli"
  "adaptagg_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptagg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
