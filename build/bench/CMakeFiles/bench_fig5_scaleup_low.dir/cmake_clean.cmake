file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_scaleup_low.dir/bench_fig5_scaleup_low.cc.o"
  "CMakeFiles/bench_fig5_scaleup_low.dir/bench_fig5_scaleup_low.cc.o.d"
  "bench_fig5_scaleup_low"
  "bench_fig5_scaleup_low.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_scaleup_low.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
