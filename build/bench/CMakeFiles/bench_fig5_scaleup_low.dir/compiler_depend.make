# Empty compiler generated dependencies file for bench_fig5_scaleup_low.
# This may be replaced when dependencies are built.
