# Empty dependencies file for bench_ablation_graefe.
# This may be replaced when dependencies are built.
