file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_graefe.dir/bench_ablation_graefe.cc.o"
  "CMakeFiles/bench_ablation_graefe.dir/bench_ablation_graefe.cc.o.d"
  "bench_ablation_graefe"
  "bench_ablation_graefe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_graefe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
