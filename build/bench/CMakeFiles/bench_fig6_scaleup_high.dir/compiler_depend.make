# Empty compiler generated dependencies file for bench_fig6_scaleup_high.
# This may be replaced when dependencies are built.
