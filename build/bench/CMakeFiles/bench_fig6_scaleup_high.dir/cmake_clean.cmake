file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_scaleup_high.dir/bench_fig6_scaleup_high.cc.o"
  "CMakeFiles/bench_fig6_scaleup_high.dir/bench_fig6_scaleup_high.cc.o.d"
  "bench_fig6_scaleup_high"
  "bench_fig6_scaleup_high.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_scaleup_high.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
