file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_implementation.dir/bench_fig8_implementation.cc.o"
  "CMakeFiles/bench_fig8_implementation.dir/bench_fig8_implementation.cc.o.d"
  "bench_fig8_implementation"
  "bench_fig8_implementation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_implementation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
