# Empty dependencies file for bench_fig8_implementation.
# This may be replaced when dependencies are built.
