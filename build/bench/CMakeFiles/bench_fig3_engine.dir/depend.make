# Empty dependencies file for bench_fig3_engine.
# This may be replaced when dependencies are built.
