file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_engine.dir/bench_fig3_engine.cc.o"
  "CMakeFiles/bench_fig3_engine.dir/bench_fig3_engine.cc.o.d"
  "bench_fig3_engine"
  "bench_fig3_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
