file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_traditional.dir/bench_fig1_traditional.cc.o"
  "CMakeFiles/bench_fig1_traditional.dir/bench_fig1_traditional.cc.o.d"
  "bench_fig1_traditional"
  "bench_fig1_traditional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_traditional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
