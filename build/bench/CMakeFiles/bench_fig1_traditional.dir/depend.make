# Empty dependencies file for bench_fig1_traditional.
# This may be replaced when dependencies are built.
