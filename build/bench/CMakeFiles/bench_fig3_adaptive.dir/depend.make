# Empty dependencies file for bench_fig3_adaptive.
# This may be replaced when dependencies are built.
