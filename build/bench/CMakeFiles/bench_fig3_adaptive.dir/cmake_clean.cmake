file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_adaptive.dir/bench_fig3_adaptive.cc.o"
  "CMakeFiles/bench_fig3_adaptive.dir/bench_fig3_adaptive.cc.o.d"
  "bench_fig3_adaptive"
  "bench_fig3_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
