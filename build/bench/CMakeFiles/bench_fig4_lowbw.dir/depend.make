# Empty dependencies file for bench_fig4_lowbw.
# This may be replaced when dependencies are built.
