file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_lowbw.dir/bench_fig4_lowbw.cc.o"
  "CMakeFiles/bench_fig4_lowbw.dir/bench_fig4_lowbw.cc.o.d"
  "bench_fig4_lowbw"
  "bench_fig4_lowbw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_lowbw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
