# Empty dependencies file for bench_ablation_sort_vs_hash.
# This may be replaced when dependencies are built.
