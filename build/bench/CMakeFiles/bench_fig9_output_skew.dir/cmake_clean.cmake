file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_output_skew.dir/bench_fig9_output_skew.cc.o"
  "CMakeFiles/bench_fig9_output_skew.dir/bench_fig9_output_skew.cc.o.d"
  "bench_fig9_output_skew"
  "bench_fig9_output_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_output_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
