# Empty dependencies file for bench_fig9_output_skew.
# This may be replaced when dependencies are built.
