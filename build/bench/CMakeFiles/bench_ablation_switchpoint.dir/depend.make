# Empty dependencies file for bench_ablation_switchpoint.
# This may be replaced when dependencies are built.
