file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_switchpoint.dir/bench_ablation_switchpoint.cc.o"
  "CMakeFiles/bench_ablation_switchpoint.dir/bench_ablation_switchpoint.cc.o.d"
  "bench_ablation_switchpoint"
  "bench_ablation_switchpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_switchpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
