file(REMOVE_RECURSE
  "CMakeFiles/bench_input_skew.dir/bench_input_skew.cc.o"
  "CMakeFiles/bench_input_skew.dir/bench_input_skew.cc.o.d"
  "bench_input_skew"
  "bench_input_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_input_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
