# Empty dependencies file for bench_input_skew.
# This may be replaced when dependencies are built.
