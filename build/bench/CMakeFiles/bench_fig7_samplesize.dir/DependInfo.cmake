
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_samplesize.cc" "bench/CMakeFiles/bench_fig7_samplesize.dir/bench_fig7_samplesize.cc.o" "gcc" "bench/CMakeFiles/bench_fig7_samplesize.dir/bench_fig7_samplesize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
