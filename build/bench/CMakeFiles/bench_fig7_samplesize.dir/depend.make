# Empty dependencies file for bench_fig7_samplesize.
# This may be replaced when dependencies are built.
