file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_samplesize.dir/bench_fig7_samplesize.cc.o"
  "CMakeFiles/bench_fig7_samplesize.dir/bench_fig7_samplesize.cc.o.d"
  "bench_fig7_samplesize"
  "bench_fig7_samplesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_samplesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
