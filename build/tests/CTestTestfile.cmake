# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/schema_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/agg_test[1]_include.cmake")
include("/root/repo/build/tests/sort_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
