file(REMOVE_RECURSE
  "CMakeFiles/agg_test.dir/agg/agg_function_test.cc.o"
  "CMakeFiles/agg_test.dir/agg/agg_function_test.cc.o.d"
  "CMakeFiles/agg_test.dir/agg/agg_spec_test.cc.o"
  "CMakeFiles/agg_test.dir/agg/agg_spec_test.cc.o.d"
  "CMakeFiles/agg_test.dir/agg/hash_table_test.cc.o"
  "CMakeFiles/agg_test.dir/agg/hash_table_test.cc.o.d"
  "CMakeFiles/agg_test.dir/agg/reference_test.cc.o"
  "CMakeFiles/agg_test.dir/agg/reference_test.cc.o.d"
  "CMakeFiles/agg_test.dir/agg/sort_aggregator_test.cc.o"
  "CMakeFiles/agg_test.dir/agg/sort_aggregator_test.cc.o.d"
  "CMakeFiles/agg_test.dir/agg/spilling_aggregator_test.cc.o"
  "CMakeFiles/agg_test.dir/agg/spilling_aggregator_test.cc.o.d"
  "agg_test"
  "agg_test.pdb"
  "agg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
