
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/agg/agg_function_test.cc" "tests/CMakeFiles/agg_test.dir/agg/agg_function_test.cc.o" "gcc" "tests/CMakeFiles/agg_test.dir/agg/agg_function_test.cc.o.d"
  "/root/repo/tests/agg/agg_spec_test.cc" "tests/CMakeFiles/agg_test.dir/agg/agg_spec_test.cc.o" "gcc" "tests/CMakeFiles/agg_test.dir/agg/agg_spec_test.cc.o.d"
  "/root/repo/tests/agg/hash_table_test.cc" "tests/CMakeFiles/agg_test.dir/agg/hash_table_test.cc.o" "gcc" "tests/CMakeFiles/agg_test.dir/agg/hash_table_test.cc.o.d"
  "/root/repo/tests/agg/reference_test.cc" "tests/CMakeFiles/agg_test.dir/agg/reference_test.cc.o" "gcc" "tests/CMakeFiles/agg_test.dir/agg/reference_test.cc.o.d"
  "/root/repo/tests/agg/sort_aggregator_test.cc" "tests/CMakeFiles/agg_test.dir/agg/sort_aggregator_test.cc.o" "gcc" "tests/CMakeFiles/agg_test.dir/agg/sort_aggregator_test.cc.o.d"
  "/root/repo/tests/agg/spilling_aggregator_test.cc" "tests/CMakeFiles/agg_test.dir/agg/spilling_aggregator_test.cc.o" "gcc" "tests/CMakeFiles/agg_test.dir/agg/spilling_aggregator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adaptagg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
