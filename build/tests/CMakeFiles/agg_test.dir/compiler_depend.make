# Empty compiler generated dependencies file for agg_test.
# This may be replaced when dependencies are built.
