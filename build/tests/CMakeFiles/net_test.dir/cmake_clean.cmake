file(REMOVE_RECURSE
  "CMakeFiles/net_test.dir/net/channel_test.cc.o"
  "CMakeFiles/net_test.dir/net/channel_test.cc.o.d"
  "CMakeFiles/net_test.dir/net/message_test.cc.o"
  "CMakeFiles/net_test.dir/net/message_test.cc.o.d"
  "CMakeFiles/net_test.dir/net/network_model_test.cc.o"
  "CMakeFiles/net_test.dir/net/network_model_test.cc.o.d"
  "CMakeFiles/net_test.dir/net/transport_test.cc.o"
  "CMakeFiles/net_test.dir/net/transport_test.cc.o.d"
  "net_test"
  "net_test.pdb"
  "net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
