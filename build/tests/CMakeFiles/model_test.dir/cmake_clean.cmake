file(REMOVE_RECURSE
  "CMakeFiles/model_test.dir/model/cost_model_test.cc.o"
  "CMakeFiles/model_test.dir/model/cost_model_test.cc.o.d"
  "CMakeFiles/model_test.dir/model/model_properties_test.cc.o"
  "CMakeFiles/model_test.dir/model/model_properties_test.cc.o.d"
  "model_test"
  "model_test.pdb"
  "model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
