
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/correctness_property_test.cc" "tests/CMakeFiles/integration_test.dir/integration/correctness_property_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/correctness_property_test.cc.o.d"
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/integration_test.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/integration/fault_injection_test.cc" "tests/CMakeFiles/integration_test.dir/integration/fault_injection_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/fault_injection_test.cc.o.d"
  "/root/repo/tests/integration/file_disk_engine_test.cc" "tests/CMakeFiles/integration_test.dir/integration/file_disk_engine_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/file_disk_engine_test.cc.o.d"
  "/root/repo/tests/integration/fuzz_query_test.cc" "tests/CMakeFiles/integration_test.dir/integration/fuzz_query_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/fuzz_query_test.cc.o.d"
  "/root/repo/tests/integration/model_engine_agreement_test.cc" "tests/CMakeFiles/integration_test.dir/integration/model_engine_agreement_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/model_engine_agreement_test.cc.o.d"
  "/root/repo/tests/integration/skew_integration_test.cc" "tests/CMakeFiles/integration_test.dir/integration/skew_integration_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/skew_integration_test.cc.o.d"
  "/root/repo/tests/integration/tcp_cluster_test.cc" "tests/CMakeFiles/integration_test.dir/integration/tcp_cluster_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/tcp_cluster_test.cc.o.d"
  "/root/repo/tests/integration/where_having_test.cc" "tests/CMakeFiles/integration_test.dir/integration/where_having_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/where_having_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adaptagg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
