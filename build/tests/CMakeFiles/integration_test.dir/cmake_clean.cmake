file(REMOVE_RECURSE
  "CMakeFiles/integration_test.dir/integration/correctness_property_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/correctness_property_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/end_to_end_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/fault_injection_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/fault_injection_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/file_disk_engine_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/file_disk_engine_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/fuzz_query_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/fuzz_query_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/model_engine_agreement_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/model_engine_agreement_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/skew_integration_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/skew_integration_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/tcp_cluster_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/tcp_cluster_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/where_having_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/where_having_test.cc.o.d"
  "integration_test"
  "integration_test.pdb"
  "integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
