file(REMOVE_RECURSE
  "CMakeFiles/exec_test.dir/exec/expression_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/expression_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/operator_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/operator_test.cc.o.d"
  "exec_test"
  "exec_test.pdb"
  "exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
