file(REMOVE_RECURSE
  "CMakeFiles/skew_adaptivity.dir/skew_adaptivity.cpp.o"
  "CMakeFiles/skew_adaptivity.dir/skew_adaptivity.cpp.o.d"
  "skew_adaptivity"
  "skew_adaptivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skew_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
