# Empty dependencies file for skew_adaptivity.
# This may be replaced when dependencies are built.
