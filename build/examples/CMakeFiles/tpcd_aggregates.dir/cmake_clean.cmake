file(REMOVE_RECURSE
  "CMakeFiles/tpcd_aggregates.dir/tpcd_aggregates.cpp.o"
  "CMakeFiles/tpcd_aggregates.dir/tpcd_aggregates.cpp.o.d"
  "tpcd_aggregates"
  "tpcd_aggregates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcd_aggregates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
