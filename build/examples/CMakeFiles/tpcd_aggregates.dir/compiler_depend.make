# Empty compiler generated dependencies file for tpcd_aggregates.
# This may be replaced when dependencies are built.
