# Empty compiler generated dependencies file for pipeline_query.
# This may be replaced when dependencies are built.
