file(REMOVE_RECURSE
  "CMakeFiles/pipeline_query.dir/pipeline_query.cpp.o"
  "CMakeFiles/pipeline_query.dir/pipeline_query.cpp.o.d"
  "pipeline_query"
  "pipeline_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
