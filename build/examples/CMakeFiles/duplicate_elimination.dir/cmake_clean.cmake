file(REMOVE_RECURSE
  "CMakeFiles/duplicate_elimination.dir/duplicate_elimination.cpp.o"
  "CMakeFiles/duplicate_elimination.dir/duplicate_elimination.cpp.o.d"
  "duplicate_elimination"
  "duplicate_elimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duplicate_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
