# Empty dependencies file for duplicate_elimination.
# This may be replaced when dependencies are built.
