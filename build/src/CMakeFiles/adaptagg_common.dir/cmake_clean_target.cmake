file(REMOVE_RECURSE
  "libadaptagg_common.a"
)
