# Empty dependencies file for adaptagg_common.
# This may be replaced when dependencies are built.
