file(REMOVE_RECURSE
  "CMakeFiles/adaptagg_common.dir/common/algorithm_kind.cc.o"
  "CMakeFiles/adaptagg_common.dir/common/algorithm_kind.cc.o.d"
  "CMakeFiles/adaptagg_common.dir/common/logging.cc.o"
  "CMakeFiles/adaptagg_common.dir/common/logging.cc.o.d"
  "CMakeFiles/adaptagg_common.dir/common/random.cc.o"
  "CMakeFiles/adaptagg_common.dir/common/random.cc.o.d"
  "CMakeFiles/adaptagg_common.dir/common/status.cc.o"
  "CMakeFiles/adaptagg_common.dir/common/status.cc.o.d"
  "libadaptagg_common.a"
  "libadaptagg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptagg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
