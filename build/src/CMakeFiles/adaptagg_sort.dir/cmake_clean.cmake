file(REMOVE_RECURSE
  "CMakeFiles/adaptagg_sort.dir/sort/external_sorter.cc.o"
  "CMakeFiles/adaptagg_sort.dir/sort/external_sorter.cc.o.d"
  "libadaptagg_sort.a"
  "libadaptagg_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptagg_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
