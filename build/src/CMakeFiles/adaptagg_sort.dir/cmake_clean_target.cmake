file(REMOVE_RECURSE
  "libadaptagg_sort.a"
)
