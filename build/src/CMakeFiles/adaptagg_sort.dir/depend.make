# Empty dependencies file for adaptagg_sort.
# This may be replaced when dependencies are built.
