file(REMOVE_RECURSE
  "libadaptagg_model.a"
)
