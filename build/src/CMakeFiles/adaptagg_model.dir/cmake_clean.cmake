file(REMOVE_RECURSE
  "CMakeFiles/adaptagg_model.dir/model/adaptive.cc.o"
  "CMakeFiles/adaptagg_model.dir/model/adaptive.cc.o.d"
  "CMakeFiles/adaptagg_model.dir/model/cost_model.cc.o"
  "CMakeFiles/adaptagg_model.dir/model/cost_model.cc.o.d"
  "CMakeFiles/adaptagg_model.dir/model/sampling_model.cc.o"
  "CMakeFiles/adaptagg_model.dir/model/sampling_model.cc.o.d"
  "CMakeFiles/adaptagg_model.dir/model/traditional.cc.o"
  "CMakeFiles/adaptagg_model.dir/model/traditional.cc.o.d"
  "libadaptagg_model.a"
  "libadaptagg_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptagg_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
