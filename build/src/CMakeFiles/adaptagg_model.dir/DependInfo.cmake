
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/adaptive.cc" "src/CMakeFiles/adaptagg_model.dir/model/adaptive.cc.o" "gcc" "src/CMakeFiles/adaptagg_model.dir/model/adaptive.cc.o.d"
  "/root/repo/src/model/cost_model.cc" "src/CMakeFiles/adaptagg_model.dir/model/cost_model.cc.o" "gcc" "src/CMakeFiles/adaptagg_model.dir/model/cost_model.cc.o.d"
  "/root/repo/src/model/sampling_model.cc" "src/CMakeFiles/adaptagg_model.dir/model/sampling_model.cc.o" "gcc" "src/CMakeFiles/adaptagg_model.dir/model/sampling_model.cc.o.d"
  "/root/repo/src/model/traditional.cc" "src/CMakeFiles/adaptagg_model.dir/model/traditional.cc.o" "gcc" "src/CMakeFiles/adaptagg_model.dir/model/traditional.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adaptagg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
