# Empty dependencies file for adaptagg_model.
# This may be replaced when dependencies are built.
