# Empty compiler generated dependencies file for adaptagg_agg.
# This may be replaced when dependencies are built.
