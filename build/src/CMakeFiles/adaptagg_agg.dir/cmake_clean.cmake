file(REMOVE_RECURSE
  "CMakeFiles/adaptagg_agg.dir/agg/agg_function.cc.o"
  "CMakeFiles/adaptagg_agg.dir/agg/agg_function.cc.o.d"
  "CMakeFiles/adaptagg_agg.dir/agg/agg_spec.cc.o"
  "CMakeFiles/adaptagg_agg.dir/agg/agg_spec.cc.o.d"
  "CMakeFiles/adaptagg_agg.dir/agg/hash_table.cc.o"
  "CMakeFiles/adaptagg_agg.dir/agg/hash_table.cc.o.d"
  "CMakeFiles/adaptagg_agg.dir/agg/reference.cc.o"
  "CMakeFiles/adaptagg_agg.dir/agg/reference.cc.o.d"
  "CMakeFiles/adaptagg_agg.dir/agg/sort_aggregator.cc.o"
  "CMakeFiles/adaptagg_agg.dir/agg/sort_aggregator.cc.o.d"
  "CMakeFiles/adaptagg_agg.dir/agg/spilling_aggregator.cc.o"
  "CMakeFiles/adaptagg_agg.dir/agg/spilling_aggregator.cc.o.d"
  "libadaptagg_agg.a"
  "libadaptagg_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptagg_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
