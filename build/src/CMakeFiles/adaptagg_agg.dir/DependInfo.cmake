
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agg/agg_function.cc" "src/CMakeFiles/adaptagg_agg.dir/agg/agg_function.cc.o" "gcc" "src/CMakeFiles/adaptagg_agg.dir/agg/agg_function.cc.o.d"
  "/root/repo/src/agg/agg_spec.cc" "src/CMakeFiles/adaptagg_agg.dir/agg/agg_spec.cc.o" "gcc" "src/CMakeFiles/adaptagg_agg.dir/agg/agg_spec.cc.o.d"
  "/root/repo/src/agg/hash_table.cc" "src/CMakeFiles/adaptagg_agg.dir/agg/hash_table.cc.o" "gcc" "src/CMakeFiles/adaptagg_agg.dir/agg/hash_table.cc.o.d"
  "/root/repo/src/agg/reference.cc" "src/CMakeFiles/adaptagg_agg.dir/agg/reference.cc.o" "gcc" "src/CMakeFiles/adaptagg_agg.dir/agg/reference.cc.o.d"
  "/root/repo/src/agg/sort_aggregator.cc" "src/CMakeFiles/adaptagg_agg.dir/agg/sort_aggregator.cc.o" "gcc" "src/CMakeFiles/adaptagg_agg.dir/agg/sort_aggregator.cc.o.d"
  "/root/repo/src/agg/spilling_aggregator.cc" "src/CMakeFiles/adaptagg_agg.dir/agg/spilling_aggregator.cc.o" "gcc" "src/CMakeFiles/adaptagg_agg.dir/agg/spilling_aggregator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adaptagg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
