file(REMOVE_RECURSE
  "libadaptagg_agg.a"
)
