# Empty compiler generated dependencies file for adaptagg_workload.
# This may be replaced when dependencies are built.
