file(REMOVE_RECURSE
  "CMakeFiles/adaptagg_workload.dir/workload/distributions.cc.o"
  "CMakeFiles/adaptagg_workload.dir/workload/distributions.cc.o.d"
  "CMakeFiles/adaptagg_workload.dir/workload/generator.cc.o"
  "CMakeFiles/adaptagg_workload.dir/workload/generator.cc.o.d"
  "CMakeFiles/adaptagg_workload.dir/workload/skew.cc.o"
  "CMakeFiles/adaptagg_workload.dir/workload/skew.cc.o.d"
  "CMakeFiles/adaptagg_workload.dir/workload/tpcd.cc.o"
  "CMakeFiles/adaptagg_workload.dir/workload/tpcd.cc.o.d"
  "libadaptagg_workload.a"
  "libadaptagg_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptagg_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
