file(REMOVE_RECURSE
  "libadaptagg_workload.a"
)
