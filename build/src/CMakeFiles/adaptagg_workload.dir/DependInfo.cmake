
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/distributions.cc" "src/CMakeFiles/adaptagg_workload.dir/workload/distributions.cc.o" "gcc" "src/CMakeFiles/adaptagg_workload.dir/workload/distributions.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/adaptagg_workload.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/adaptagg_workload.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/skew.cc" "src/CMakeFiles/adaptagg_workload.dir/workload/skew.cc.o" "gcc" "src/CMakeFiles/adaptagg_workload.dir/workload/skew.cc.o.d"
  "/root/repo/src/workload/tpcd.cc" "src/CMakeFiles/adaptagg_workload.dir/workload/tpcd.cc.o" "gcc" "src/CMakeFiles/adaptagg_workload.dir/workload/tpcd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adaptagg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
