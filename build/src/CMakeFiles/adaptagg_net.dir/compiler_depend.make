# Empty compiler generated dependencies file for adaptagg_net.
# This may be replaced when dependencies are built.
