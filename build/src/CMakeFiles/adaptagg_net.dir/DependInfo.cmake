
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/channel.cc" "src/CMakeFiles/adaptagg_net.dir/net/channel.cc.o" "gcc" "src/CMakeFiles/adaptagg_net.dir/net/channel.cc.o.d"
  "/root/repo/src/net/inproc_transport.cc" "src/CMakeFiles/adaptagg_net.dir/net/inproc_transport.cc.o" "gcc" "src/CMakeFiles/adaptagg_net.dir/net/inproc_transport.cc.o.d"
  "/root/repo/src/net/message.cc" "src/CMakeFiles/adaptagg_net.dir/net/message.cc.o" "gcc" "src/CMakeFiles/adaptagg_net.dir/net/message.cc.o.d"
  "/root/repo/src/net/network_model.cc" "src/CMakeFiles/adaptagg_net.dir/net/network_model.cc.o" "gcc" "src/CMakeFiles/adaptagg_net.dir/net/network_model.cc.o.d"
  "/root/repo/src/net/tcp_transport.cc" "src/CMakeFiles/adaptagg_net.dir/net/tcp_transport.cc.o" "gcc" "src/CMakeFiles/adaptagg_net.dir/net/tcp_transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adaptagg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
