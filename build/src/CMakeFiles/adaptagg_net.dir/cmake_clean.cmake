file(REMOVE_RECURSE
  "CMakeFiles/adaptagg_net.dir/net/channel.cc.o"
  "CMakeFiles/adaptagg_net.dir/net/channel.cc.o.d"
  "CMakeFiles/adaptagg_net.dir/net/inproc_transport.cc.o"
  "CMakeFiles/adaptagg_net.dir/net/inproc_transport.cc.o.d"
  "CMakeFiles/adaptagg_net.dir/net/message.cc.o"
  "CMakeFiles/adaptagg_net.dir/net/message.cc.o.d"
  "CMakeFiles/adaptagg_net.dir/net/network_model.cc.o"
  "CMakeFiles/adaptagg_net.dir/net/network_model.cc.o.d"
  "CMakeFiles/adaptagg_net.dir/net/tcp_transport.cc.o"
  "CMakeFiles/adaptagg_net.dir/net/tcp_transport.cc.o.d"
  "libadaptagg_net.a"
  "libadaptagg_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptagg_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
