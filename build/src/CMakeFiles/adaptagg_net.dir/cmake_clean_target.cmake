file(REMOVE_RECURSE
  "libadaptagg_net.a"
)
