
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_repartitioning.cc" "src/CMakeFiles/adaptagg_core.dir/core/adaptive_repartitioning.cc.o" "gcc" "src/CMakeFiles/adaptagg_core.dir/core/adaptive_repartitioning.cc.o.d"
  "/root/repo/src/core/adaptive_two_phase.cc" "src/CMakeFiles/adaptagg_core.dir/core/adaptive_two_phase.cc.o" "gcc" "src/CMakeFiles/adaptagg_core.dir/core/adaptive_two_phase.cc.o.d"
  "/root/repo/src/core/algorithm.cc" "src/CMakeFiles/adaptagg_core.dir/core/algorithm.cc.o" "gcc" "src/CMakeFiles/adaptagg_core.dir/core/algorithm.cc.o.d"
  "/root/repo/src/core/centralized_two_phase.cc" "src/CMakeFiles/adaptagg_core.dir/core/centralized_two_phase.cc.o" "gcc" "src/CMakeFiles/adaptagg_core.dir/core/centralized_two_phase.cc.o.d"
  "/root/repo/src/core/graefe_two_phase.cc" "src/CMakeFiles/adaptagg_core.dir/core/graefe_two_phase.cc.o" "gcc" "src/CMakeFiles/adaptagg_core.dir/core/graefe_two_phase.cc.o.d"
  "/root/repo/src/core/phases.cc" "src/CMakeFiles/adaptagg_core.dir/core/phases.cc.o" "gcc" "src/CMakeFiles/adaptagg_core.dir/core/phases.cc.o.d"
  "/root/repo/src/core/query.cc" "src/CMakeFiles/adaptagg_core.dir/core/query.cc.o" "gcc" "src/CMakeFiles/adaptagg_core.dir/core/query.cc.o.d"
  "/root/repo/src/core/repartitioning.cc" "src/CMakeFiles/adaptagg_core.dir/core/repartitioning.cc.o" "gcc" "src/CMakeFiles/adaptagg_core.dir/core/repartitioning.cc.o.d"
  "/root/repo/src/core/sampling.cc" "src/CMakeFiles/adaptagg_core.dir/core/sampling.cc.o" "gcc" "src/CMakeFiles/adaptagg_core.dir/core/sampling.cc.o.d"
  "/root/repo/src/core/sort_two_phase.cc" "src/CMakeFiles/adaptagg_core.dir/core/sort_two_phase.cc.o" "gcc" "src/CMakeFiles/adaptagg_core.dir/core/sort_two_phase.cc.o.d"
  "/root/repo/src/core/two_phase.cc" "src/CMakeFiles/adaptagg_core.dir/core/two_phase.cc.o" "gcc" "src/CMakeFiles/adaptagg_core.dir/core/two_phase.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adaptagg_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
