file(REMOVE_RECURSE
  "libadaptagg_core.a"
)
