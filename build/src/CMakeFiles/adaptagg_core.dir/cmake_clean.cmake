file(REMOVE_RECURSE
  "CMakeFiles/adaptagg_core.dir/core/adaptive_repartitioning.cc.o"
  "CMakeFiles/adaptagg_core.dir/core/adaptive_repartitioning.cc.o.d"
  "CMakeFiles/adaptagg_core.dir/core/adaptive_two_phase.cc.o"
  "CMakeFiles/adaptagg_core.dir/core/adaptive_two_phase.cc.o.d"
  "CMakeFiles/adaptagg_core.dir/core/algorithm.cc.o"
  "CMakeFiles/adaptagg_core.dir/core/algorithm.cc.o.d"
  "CMakeFiles/adaptagg_core.dir/core/centralized_two_phase.cc.o"
  "CMakeFiles/adaptagg_core.dir/core/centralized_two_phase.cc.o.d"
  "CMakeFiles/adaptagg_core.dir/core/graefe_two_phase.cc.o"
  "CMakeFiles/adaptagg_core.dir/core/graefe_two_phase.cc.o.d"
  "CMakeFiles/adaptagg_core.dir/core/phases.cc.o"
  "CMakeFiles/adaptagg_core.dir/core/phases.cc.o.d"
  "CMakeFiles/adaptagg_core.dir/core/query.cc.o"
  "CMakeFiles/adaptagg_core.dir/core/query.cc.o.d"
  "CMakeFiles/adaptagg_core.dir/core/repartitioning.cc.o"
  "CMakeFiles/adaptagg_core.dir/core/repartitioning.cc.o.d"
  "CMakeFiles/adaptagg_core.dir/core/sampling.cc.o"
  "CMakeFiles/adaptagg_core.dir/core/sampling.cc.o.d"
  "CMakeFiles/adaptagg_core.dir/core/sort_two_phase.cc.o"
  "CMakeFiles/adaptagg_core.dir/core/sort_two_phase.cc.o.d"
  "CMakeFiles/adaptagg_core.dir/core/two_phase.cc.o"
  "CMakeFiles/adaptagg_core.dir/core/two_phase.cc.o.d"
  "libadaptagg_core.a"
  "libadaptagg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptagg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
