# Empty dependencies file for adaptagg_core.
# This may be replaced when dependencies are built.
