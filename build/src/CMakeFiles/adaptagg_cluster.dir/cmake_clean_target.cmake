file(REMOVE_RECURSE
  "libadaptagg_cluster.a"
)
