# Empty dependencies file for adaptagg_cluster.
# This may be replaced when dependencies are built.
