file(REMOVE_RECURSE
  "CMakeFiles/adaptagg_cluster.dir/cluster/cluster.cc.o"
  "CMakeFiles/adaptagg_cluster.dir/cluster/cluster.cc.o.d"
  "CMakeFiles/adaptagg_cluster.dir/cluster/exchange.cc.o"
  "CMakeFiles/adaptagg_cluster.dir/cluster/exchange.cc.o.d"
  "CMakeFiles/adaptagg_cluster.dir/cluster/node_context.cc.o"
  "CMakeFiles/adaptagg_cluster.dir/cluster/node_context.cc.o.d"
  "CMakeFiles/adaptagg_cluster.dir/cluster/run_report.cc.o"
  "CMakeFiles/adaptagg_cluster.dir/cluster/run_report.cc.o.d"
  "libadaptagg_cluster.a"
  "libadaptagg_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptagg_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
