file(REMOVE_RECURSE
  "libadaptagg_schema.a"
)
