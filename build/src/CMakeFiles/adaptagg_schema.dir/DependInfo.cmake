
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schema/schema.cc" "src/CMakeFiles/adaptagg_schema.dir/schema/schema.cc.o" "gcc" "src/CMakeFiles/adaptagg_schema.dir/schema/schema.cc.o.d"
  "/root/repo/src/schema/tuple.cc" "src/CMakeFiles/adaptagg_schema.dir/schema/tuple.cc.o" "gcc" "src/CMakeFiles/adaptagg_schema.dir/schema/tuple.cc.o.d"
  "/root/repo/src/schema/value.cc" "src/CMakeFiles/adaptagg_schema.dir/schema/value.cc.o" "gcc" "src/CMakeFiles/adaptagg_schema.dir/schema/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adaptagg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
