file(REMOVE_RECURSE
  "CMakeFiles/adaptagg_schema.dir/schema/schema.cc.o"
  "CMakeFiles/adaptagg_schema.dir/schema/schema.cc.o.d"
  "CMakeFiles/adaptagg_schema.dir/schema/tuple.cc.o"
  "CMakeFiles/adaptagg_schema.dir/schema/tuple.cc.o.d"
  "CMakeFiles/adaptagg_schema.dir/schema/value.cc.o"
  "CMakeFiles/adaptagg_schema.dir/schema/value.cc.o.d"
  "libadaptagg_schema.a"
  "libadaptagg_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptagg_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
