# Empty dependencies file for adaptagg_schema.
# This may be replaced when dependencies are built.
