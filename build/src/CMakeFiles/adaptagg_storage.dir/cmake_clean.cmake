file(REMOVE_RECURSE
  "CMakeFiles/adaptagg_storage.dir/storage/disk.cc.o"
  "CMakeFiles/adaptagg_storage.dir/storage/disk.cc.o.d"
  "CMakeFiles/adaptagg_storage.dir/storage/heap_file.cc.o"
  "CMakeFiles/adaptagg_storage.dir/storage/heap_file.cc.o.d"
  "CMakeFiles/adaptagg_storage.dir/storage/page.cc.o"
  "CMakeFiles/adaptagg_storage.dir/storage/page.cc.o.d"
  "CMakeFiles/adaptagg_storage.dir/storage/partitioned_relation.cc.o"
  "CMakeFiles/adaptagg_storage.dir/storage/partitioned_relation.cc.o.d"
  "CMakeFiles/adaptagg_storage.dir/storage/spill_file.cc.o"
  "CMakeFiles/adaptagg_storage.dir/storage/spill_file.cc.o.d"
  "libadaptagg_storage.a"
  "libadaptagg_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptagg_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
