# Empty dependencies file for adaptagg_storage.
# This may be replaced when dependencies are built.
