file(REMOVE_RECURSE
  "libadaptagg_storage.a"
)
