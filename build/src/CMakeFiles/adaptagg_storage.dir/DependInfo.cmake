
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/disk.cc" "src/CMakeFiles/adaptagg_storage.dir/storage/disk.cc.o" "gcc" "src/CMakeFiles/adaptagg_storage.dir/storage/disk.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/adaptagg_storage.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/adaptagg_storage.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/CMakeFiles/adaptagg_storage.dir/storage/page.cc.o" "gcc" "src/CMakeFiles/adaptagg_storage.dir/storage/page.cc.o.d"
  "/root/repo/src/storage/partitioned_relation.cc" "src/CMakeFiles/adaptagg_storage.dir/storage/partitioned_relation.cc.o" "gcc" "src/CMakeFiles/adaptagg_storage.dir/storage/partitioned_relation.cc.o.d"
  "/root/repo/src/storage/spill_file.cc" "src/CMakeFiles/adaptagg_storage.dir/storage/spill_file.cc.o" "gcc" "src/CMakeFiles/adaptagg_storage.dir/storage/spill_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adaptagg_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
