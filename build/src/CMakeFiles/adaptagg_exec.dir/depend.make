# Empty dependencies file for adaptagg_exec.
# This may be replaced when dependencies are built.
