file(REMOVE_RECURSE
  "libadaptagg_exec.a"
)
