
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/expression.cc" "src/CMakeFiles/adaptagg_exec.dir/exec/expression.cc.o" "gcc" "src/CMakeFiles/adaptagg_exec.dir/exec/expression.cc.o.d"
  "/root/repo/src/exec/project.cc" "src/CMakeFiles/adaptagg_exec.dir/exec/project.cc.o" "gcc" "src/CMakeFiles/adaptagg_exec.dir/exec/project.cc.o.d"
  "/root/repo/src/exec/scan.cc" "src/CMakeFiles/adaptagg_exec.dir/exec/scan.cc.o" "gcc" "src/CMakeFiles/adaptagg_exec.dir/exec/scan.cc.o.d"
  "/root/repo/src/exec/select.cc" "src/CMakeFiles/adaptagg_exec.dir/exec/select.cc.o" "gcc" "src/CMakeFiles/adaptagg_exec.dir/exec/select.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adaptagg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adaptagg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
