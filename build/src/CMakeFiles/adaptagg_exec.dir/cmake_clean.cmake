file(REMOVE_RECURSE
  "CMakeFiles/adaptagg_exec.dir/exec/expression.cc.o"
  "CMakeFiles/adaptagg_exec.dir/exec/expression.cc.o.d"
  "CMakeFiles/adaptagg_exec.dir/exec/project.cc.o"
  "CMakeFiles/adaptagg_exec.dir/exec/project.cc.o.d"
  "CMakeFiles/adaptagg_exec.dir/exec/scan.cc.o"
  "CMakeFiles/adaptagg_exec.dir/exec/scan.cc.o.d"
  "CMakeFiles/adaptagg_exec.dir/exec/select.cc.o"
  "CMakeFiles/adaptagg_exec.dir/exec/select.cc.o.d"
  "libadaptagg_exec.a"
  "libadaptagg_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptagg_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
