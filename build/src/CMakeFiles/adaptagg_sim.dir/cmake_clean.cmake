file(REMOVE_RECURSE
  "CMakeFiles/adaptagg_sim.dir/sim/cost_clock.cc.o"
  "CMakeFiles/adaptagg_sim.dir/sim/cost_clock.cc.o.d"
  "CMakeFiles/adaptagg_sim.dir/sim/params.cc.o"
  "CMakeFiles/adaptagg_sim.dir/sim/params.cc.o.d"
  "libadaptagg_sim.a"
  "libadaptagg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptagg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
