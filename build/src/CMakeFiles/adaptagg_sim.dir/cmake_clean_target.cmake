file(REMOVE_RECURSE
  "libadaptagg_sim.a"
)
