
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_clock.cc" "src/CMakeFiles/adaptagg_sim.dir/sim/cost_clock.cc.o" "gcc" "src/CMakeFiles/adaptagg_sim.dir/sim/cost_clock.cc.o.d"
  "/root/repo/src/sim/params.cc" "src/CMakeFiles/adaptagg_sim.dir/sim/params.cc.o" "gcc" "src/CMakeFiles/adaptagg_sim.dir/sim/params.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adaptagg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
