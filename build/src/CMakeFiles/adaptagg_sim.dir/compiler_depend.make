# Empty compiler generated dependencies file for adaptagg_sim.
# This may be replaced when dependencies are built.
