// adaptagg_cli — run aggregation experiments from the command line.
//
//   adaptagg_cli --nodes 8 --tuples 500000 --groups 10000 --algorithm all
//   adaptagg_cli --output-skew --algorithm a2p --network low
//   adaptagg_cli --model --nodes 32 --sweep          (analytical curves)
//
// Prints one row per run: algorithm, modeled time, wall time, result
// rows, spills, adaptive switches. --csv makes the output
// machine-readable.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "agg/reference.h"
#include "cluster/run_report.h"
#include "cluster/cluster.h"
#include "core/algorithm.h"
#include "model/cost_model.h"
#include "model/merge_model.h"
#include "net/fault.h"
#include "obs/trace_export.h"
#include "serve/cluster_service.h"
#include "workload/generator.h"
#include "workload/skew.h"

namespace adaptagg {
namespace {

struct CliOptions {
  int nodes = 8;
  int64_t tuples = 200'000;
  int64_t groups = 1'000;
  int64_t hash_entries = -1;
  std::string algorithm = "all";
  NetworkKind network = NetworkKind::kHighBandwidth;
  GroupDistribution distribution = GroupDistribution::kUniform;
  double zipf_theta = 0.0;
  double input_skew = 1.0;
  bool output_skew = false;
  uint64_t seed = 42;
  bool model = false;
  bool sweep = false;
  bool csv = false;
  bool verify = false;
  bool verbose = false;
  std::string trace_file;
  std::string fault;
  double fault_timeout = -1;
  bool recover = false;
  int64_t checkpoint_every = -1;
  bool serve = false;
  int clients = 4;
  MergeMode merge_mode = MergeMode::kAuto;
};

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --nodes N            cluster size (default 8)\n"
      "  --tuples T           relation cardinality (default 200000)\n"
      "  --groups G           number of GROUP BY groups (default 1000)\n"
      "  --hash-entries M     per-node hash table bound (default: Table 1)\n"
      "  --algorithm A        c2p|2p|rep|samp|a2p|arep|opt2p|sort2p|all\n"
      "  --network K          high|low (bandwidth; default high)\n"
      "  --distribution D     uniform|zipf|sequential\n"
      "  --zipf-theta X       zipf skew in [0,1) (default 0)\n"
      "  --input-skew F       first node gets F x the tuples (default 1)\n"
      "  --output-skew        figure-9 layout (half the nodes: 1 group)\n"
      "  --seed S             workload seed\n"
      "  --model              analytical cost model instead of the engine\n"
      "  --sweep              sweep grouping selectivity instead of one G\n"
      "  --verify             check results against the reference oracle\n"
      "  --csv                machine-readable output\n"
      "  --verbose            per-node clock/counter report per run\n"
      "  --trace FILE         write a Chrome trace-event JSON of the run\n"
      "                       (with --algorithm all, FILE gets a\n"
      "                       _<algo> suffix per run)\n"
      "  --fault PLAN         inject faults, e.g.\n"
      "                       'drop:from=1,to=2,nth=0;crash:node=2,\n"
      "                       tuple=5000;straggle:node=3,factor=4'\n"
      "                       (arms failure detection; aborted runs\n"
      "                       report node, phase, and cause)\n"
      "  --fault-timeout S    override the derived recv idle deadline\n"
      "                       and arm failure detection explicitly\n"
      "  --recover            enable fault recovery: checkpoint partial\n"
      "                       aggregates and re-execute crashed nodes\n"
      "                       from the last checkpoint instead of\n"
      "                       aborting (DESIGN.md recovery protocol)\n"
      "  --checkpoint-every K checkpoint cadence in scan batches\n"
      "                       (default: cost-model choice; 0 = replay\n"
      "                       from scratch; implies --recover)\n"
      "  --serve              serving-mode demo: resident ClusterService,\n"
      "                       concurrent clients, result cache; prints\n"
      "                       throughput, latency percentiles, and the\n"
      "                       serve.* counters\n"
      "  --clients N          concurrent clients for --serve (default 4)\n"
      "  --merge-mode M       final-merge topology: auto|central|tree|\n"
      "                       radix|shared (default auto: the sampling\n"
      "                       phase's cost model decides; pins demote to\n"
      "                       the seed wire when unsupported, e.g.\n"
      "                       shared over sockets or any pin during\n"
      "                       recovery)\n",
      argv0);
}

Result<AlgorithmKind> ParseAlgorithm(const std::string& s) {
  if (s == "c2p") return AlgorithmKind::kCentralizedTwoPhase;
  if (s == "2p") return AlgorithmKind::kTwoPhase;
  if (s == "rep") return AlgorithmKind::kRepartitioning;
  if (s == "samp") return AlgorithmKind::kSampling;
  if (s == "a2p") return AlgorithmKind::kAdaptiveTwoPhase;
  if (s == "arep") return AlgorithmKind::kAdaptiveRepartitioning;
  if (s == "opt2p") return AlgorithmKind::kGraefeTwoPhase;
  if (s == "sort2p") return AlgorithmKind::kSortTwoPhase;
  return Status::InvalidArgument("unknown algorithm: " + s);
}

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(arg + " needs a value");
      }
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      std::exit(0);
    } else if (arg == "--nodes") {
      ADAPTAGG_ASSIGN_OR_RETURN(std::string v, next());
      opt.nodes = std::atoi(v.c_str());
    } else if (arg == "--tuples") {
      ADAPTAGG_ASSIGN_OR_RETURN(std::string v, next());
      opt.tuples = std::atoll(v.c_str());
    } else if (arg == "--groups") {
      ADAPTAGG_ASSIGN_OR_RETURN(std::string v, next());
      opt.groups = std::atoll(v.c_str());
    } else if (arg == "--hash-entries") {
      ADAPTAGG_ASSIGN_OR_RETURN(std::string v, next());
      opt.hash_entries = std::atoll(v.c_str());
    } else if (arg == "--algorithm") {
      ADAPTAGG_ASSIGN_OR_RETURN(opt.algorithm, next());
    } else if (arg == "--network") {
      ADAPTAGG_ASSIGN_OR_RETURN(std::string v, next());
      if (v == "high") {
        opt.network = NetworkKind::kHighBandwidth;
      } else if (v == "low") {
        opt.network = NetworkKind::kLimitedBandwidth;
      } else {
        return Status::InvalidArgument("bad --network: " + v);
      }
    } else if (arg == "--distribution") {
      ADAPTAGG_ASSIGN_OR_RETURN(std::string v, next());
      if (v == "uniform") {
        opt.distribution = GroupDistribution::kUniform;
      } else if (v == "zipf") {
        opt.distribution = GroupDistribution::kZipf;
      } else if (v == "sequential") {
        opt.distribution = GroupDistribution::kSequential;
      } else {
        return Status::InvalidArgument("bad --distribution: " + v);
      }
    } else if (arg == "--zipf-theta") {
      ADAPTAGG_ASSIGN_OR_RETURN(std::string v, next());
      opt.zipf_theta = std::atof(v.c_str());
    } else if (arg == "--input-skew") {
      ADAPTAGG_ASSIGN_OR_RETURN(std::string v, next());
      opt.input_skew = std::atof(v.c_str());
    } else if (arg == "--output-skew") {
      opt.output_skew = true;
    } else if (arg == "--seed") {
      ADAPTAGG_ASSIGN_OR_RETURN(std::string v, next());
      opt.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (arg == "--model") {
      opt.model = true;
    } else if (arg == "--sweep") {
      opt.sweep = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--verify") {
      opt.verify = true;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--trace") {
      ADAPTAGG_ASSIGN_OR_RETURN(opt.trace_file, next());
    } else if (arg == "--fault") {
      ADAPTAGG_ASSIGN_OR_RETURN(opt.fault, next());
    } else if (arg == "--fault-timeout") {
      ADAPTAGG_ASSIGN_OR_RETURN(std::string v, next());
      opt.fault_timeout = std::atof(v.c_str());
    } else if (arg == "--recover") {
      opt.recover = true;
    } else if (arg == "--checkpoint-every") {
      ADAPTAGG_ASSIGN_OR_RETURN(std::string v, next());
      opt.checkpoint_every = std::atoll(v.c_str());
      opt.recover = true;
    } else if (arg == "--serve") {
      opt.serve = true;
    } else if (arg == "--clients") {
      ADAPTAGG_ASSIGN_OR_RETURN(std::string v, next());
      opt.clients = std::atoi(v.c_str());
    } else if (arg == "--merge-mode") {
      ADAPTAGG_ASSIGN_OR_RETURN(std::string v, next());
      if (v == "auto") {
        opt.merge_mode = MergeMode::kAuto;
      } else if (v == "central") {
        opt.merge_mode = MergeMode::kCentral;
      } else if (v == "tree") {
        opt.merge_mode = MergeMode::kTree;
      } else if (v == "radix") {
        opt.merge_mode = MergeMode::kRadix;
      } else if (v == "shared") {
        opt.merge_mode = MergeMode::kShared;
      } else {
        return Status::InvalidArgument("bad --merge-mode: " + v);
      }
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  return opt;
}

Result<std::vector<AlgorithmKind>> SelectAlgorithms(const CliOptions& opt) {
  if (opt.algorithm == "all") return AllAlgorithms();
  ADAPTAGG_ASSIGN_OR_RETURN(AlgorithmKind kind,
                            ParseAlgorithm(opt.algorithm));
  return std::vector<AlgorithmKind>{kind};
}

SystemParams MakeParams(const CliOptions& opt) {
  SystemParams p;
  p.num_nodes = opt.nodes;
  p.num_tuples = opt.tuples;
  p.network = opt.network;
  if (opt.network == NetworkKind::kLimitedBandwidth) {
    p.msg_latency_s = 4096.0 * 8.0 / 10e6;  // 10 Mbit/s Ethernet
  }
  if (opt.hash_entries > 0) p.max_hash_entries = opt.hash_entries;
  return p;
}

int RunModel(const CliOptions& opt,
             const std::vector<AlgorithmKind>& algorithms) {
  CostModel::Config cfg;
  cfg.params = MakeParams(opt);
  CostModel model(cfg);

  std::vector<double> selectivities;
  if (opt.sweep) {
    for (double s = 1.0 / static_cast<double>(opt.tuples); s < 0.5;
         s *= 10) {
      selectivities.push_back(s);
    }
    selectivities.push_back(0.5);
  } else {
    selectivities.push_back(static_cast<double>(opt.groups) /
                            static_cast<double>(opt.tuples));
  }

  if (opt.csv) {
    std::printf("selectivity,algorithm,model_seconds\n");
  } else {
    std::printf("analytical model: %s\n", cfg.params.ToString().c_str());
    std::printf("%-12s %-8s %12s\n", "S", "algo", "model(s)");
  }
  for (double s : selectivities) {
    for (AlgorithmKind kind : algorithms) {
      double t = model.Time(kind, s);
      if (opt.csv) {
        std::printf("%.6e,%s,%.6f\n", s,
                    AlgorithmKindToString(kind).c_str(), t);
      } else {
        std::printf("%-12.3e %-8s %12.4f\n", s,
                    AlgorithmKindToString(kind).c_str(), t);
      }
    }
  }
  return 0;
}

Result<PartitionedRelation> MakeCliRelation(const CliOptions& opt) {
  if (opt.output_skew) {
    OutputSkewSpec spec;
    spec.num_nodes = opt.nodes;
    spec.single_group_nodes = opt.nodes / 2;
    spec.num_tuples = opt.tuples;
    spec.num_groups = opt.groups;
    spec.seed = opt.seed;
    return GenerateOutputSkewRelation(spec);
  }
  WorkloadSpec spec;
  spec.num_nodes = opt.nodes;
  spec.num_tuples = opt.tuples;
  spec.num_groups = opt.groups;
  spec.distribution = opt.distribution;
  spec.zipf_theta = opt.zipf_theta;
  spec.input_skew_factor = opt.input_skew;
  spec.seed = opt.seed;
  return GenerateRelation(spec);
}

int RunEngine(const CliOptions& opt,
              const std::vector<AlgorithmKind>& algorithms) {
  SystemParams params = MakeParams(opt);

  Result<PartitionedRelation> rel = MakeCliRelation(opt);
  if (!rel.ok()) {
    std::fprintf(stderr, "workload: %s\n", rel.status().ToString().c_str());
    return 1;
  }
  Result<AggregationSpec> spec = MakeBenchQuery(&rel->schema());
  if (!spec.ok()) {
    std::fprintf(stderr, "query: %s\n", spec.status().ToString().c_str());
    return 1;
  }

  ResultSet expected;
  if (opt.verify) {
    Result<ResultSet> ref = ReferenceAggregate(*spec, *rel);
    if (!ref.ok()) {
      std::fprintf(stderr, "reference: %s\n",
                   ref.status().ToString().c_str());
      return 1;
    }
    expected = std::move(ref).value();
  }

  FaultPlan fault_plan;
  if (!opt.fault.empty()) {
    Result<FaultPlan> parsed = FaultPlan::Parse(opt.fault);
    if (!parsed.ok()) {
      std::fprintf(stderr, "--fault: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    fault_plan = std::move(parsed).value();
  }

  // One resident service runs every algorithm; the cache is off so each
  // algorithm actually executes instead of replaying the first one's
  // rows (they all produce the same result by design).
  ServiceConfig service_config;
  service_config.params = params;
  service_config.cache_entries = 0;
  Result<std::unique_ptr<ClusterService>> service =
      ClusterService::Start(service_config, &*rel);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  if (opt.csv) {
    std::printf(
        "algorithm,model_seconds,wall_seconds,rows,spilled,switched%s\n",
        opt.verify ? ",verified" : "");
  } else {
    std::printf("engine: %s\n", params.ToString().c_str());
    std::printf("%-8s %10s %10s %10s %10s %9s%s\n", "algo", "model(s)",
                "wall(s)", "rows", "spilled", "switched",
                opt.verify ? "  verified" : "");
  }
  for (AlgorithmKind kind : algorithms) {
    AlgorithmOptions run_opts;
    run_opts.gather_results = opt.verify;
    run_opts.merge_mode = opt.merge_mode;
    run_opts.fault_plan = fault_plan;
    if (opt.fault_timeout > 0) {
      run_opts.failure.enabled = true;
      run_opts.failure.recv_idle_timeout_s = opt.fault_timeout;
    }
    if (opt.recover) {
      run_opts.recovery.enabled = true;
      run_opts.recovery.checkpoint_every_batches = opt.checkpoint_every;
    }
    if (!opt.trace_file.empty()) {
      run_opts.obs.spans = true;
      run_opts.obs.traces = true;
    }
    ServeQuery submission;
    submission.spec = *spec;
    submission.algorithm = kind;
    submission.options = run_opts;
    Result<QueryTicketPtr> ticket = (*service)->Submit(std::move(submission));
    if (!ticket.ok()) {
      std::fprintf(stderr, "%s: %s\n", AlgorithmKindToString(kind).c_str(),
                   ticket.status().ToString().c_str());
      return 1;
    }
    RunResult run = (*ticket)->Wait();
    if (!run.status.ok()) {
      if (!fault_plan.empty()) {
        // Failing is the expected outcome of many fault plans; report
        // the (node, phase, cause) diagnosis and keep going.
        std::printf("%-8s ABORTED: %s\n",
                    AlgorithmKindToString(kind).c_str(),
                    run.status.ToString().c_str());
        continue;
      }
      std::fprintf(stderr, "%s: %s\n", AlgorithmKindToString(kind).c_str(),
                   run.status.ToString().c_str());
      return 1;
    }
    if (!opt.trace_file.empty()) {
      std::string path = opt.trace_file;
      if (algorithms.size() > 1) {
        // One file per algorithm: insert _<algo> before the extension.
        const std::string suffix = "_" + AlgorithmKindToString(kind);
        const size_t dot = path.find_last_of('.');
        if (dot == std::string::npos ||
            path.find('/', dot) != std::string::npos) {
          path += suffix;
        } else {
          path.insert(dot, suffix);
        }
      }
      Status st = WriteChromeTrace(run.trace_events, run.num_nodes, path);
      if (!st.ok()) {
        std::fprintf(stderr, "trace: %s\n", st.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote %s\n", path.c_str());
    }
    bool verified =
        opt.verify && ResultSetsEqual(run.results, expected);
    if (opt.csv) {
      std::printf("%s,%.6f,%.6f,%lld,%lld,%d%s\n",
                  AlgorithmKindToString(kind).c_str(), run.sim_time_s,
                  run.wall_time_s,
                  static_cast<long long>(run.total_result_rows()),
                  static_cast<long long>(run.total_spilled_records()),
                  run.nodes_switched(),
                  opt.verify ? (verified ? ",yes" : ",NO") : "");
    } else {
      std::printf("%-8s %10.4f %10.4f %10lld %10lld %6d/%-2d%s\n",
                  AlgorithmKindToString(kind).c_str(), run.sim_time_s,
                  run.wall_time_s,
                  static_cast<long long>(run.total_result_rows()),
                  static_cast<long long>(run.total_spilled_records()),
                  run.nodes_switched(), opt.nodes,
                  opt.verify ? (verified ? "  OK" : "  MISMATCH") : "");
    }
    if (opt.verbose) {
      std::printf("%s", RunReport(run).c_str());
    }
    if (opt.verify && !verified) return 2;
  }
  return 0;
}

/// --serve: the serving-layer demo. N concurrent clients submit a mix
/// of four query shapes (the bench query plus three WHERE variants) to
/// one resident ClusterService; each shape executes once and later
/// submissions hit the result cache. Prints throughput, latency
/// percentiles from the tickets' wall stamps, and the serve.* counters.
int RunServe(const CliOptions& opt) {
  SystemParams params = MakeParams(opt);
  Result<PartitionedRelation> rel = MakeCliRelation(opt);
  if (!rel.ok()) {
    std::fprintf(stderr, "workload: %s\n", rel.status().ToString().c_str());
    return 1;
  }
  Result<AggregationSpec> spec = MakeBenchQuery(&rel->schema());
  if (!spec.ok()) {
    std::fprintf(stderr, "query: %s\n", spec.status().ToString().c_str());
    return 1;
  }

  ServiceConfig config;
  config.params = params;
  Result<std::unique_ptr<ClusterService>> service =
      ClusterService::Start(config, &*rel);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }

  const int clients = std::max(1, opt.clients);
  constexpr int kQueriesPerClient = 8;
  std::printf(
      "serving: %d clients x %d queries, 4 query shapes, cache on\n",
      clients, kQueriesPerClient);

  std::vector<double> latencies(
      static_cast<size_t>(clients) * kQueriesPerClient, -1.0);
  std::atomic<int> rejected{0};
  std::atomic<int> failed{0};
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (int q = 0; q < kQueriesPerClient; ++q) {
          ServeQuery submission;
          submission.spec = *spec;
          const int64_t shape = (c + q) % 4;
          if (shape > 0) {
            submission.options.where =
                Gt(Col(kBenchGroupCol), Lit(int64_t{shape}));
          }
          Result<QueryTicketPtr> ticket =
              (*service)->Submit(std::move(submission));
          if (!ticket.ok()) {
            rejected.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          const RunResult& run = (*ticket)->Wait();
          if (!run.status.ok()) {
            failed.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          latencies[static_cast<size_t>(c) * kQueriesPerClient +
                    static_cast<size_t>(q)] =
              (*ticket)->complete_wall_s() - (*ticket)->submit_wall_s();
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  std::vector<double> ok;
  for (double l : latencies) {
    if (l >= 0) ok.push_back(l);
  }
  std::sort(ok.begin(), ok.end());
  auto pct = [&](double p) {
    if (ok.empty()) return 0.0;
    size_t idx = static_cast<size_t>(p * static_cast<double>(ok.size()));
    if (idx >= ok.size()) idx = ok.size() - 1;
    return ok[idx] * 1e3;
  };

  MetricsSnapshot m = (*service)->Metrics();
  std::printf("completed  : %zu ok, %d failed, %d rejected\n", ok.size(),
              failed.load(), rejected.load());
  std::printf("latency ms : p50=%.2f p95=%.2f p99=%.2f\n", pct(0.50),
              pct(0.95), pct(0.99));
  std::printf("admitted   : %lld (inflight high-water %lld)\n",
              static_cast<long long>(m.Value("serve.admitted")),
              static_cast<long long>(
                  m.Value("serve.inflight_high_water")));
  std::printf("cache      : %lld hits / %lld misses\n",
              static_cast<long long>(m.Value("serve.cache.hits")),
              static_cast<long long>(m.Value("serve.cache.misses")));
  (*service)->Shutdown();
  if ((*service)->resident_threads() != 0) {
    std::fprintf(stderr, "leaked resident threads after shutdown\n");
    return 1;
  }
  return failed.load() == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  Result<CliOptions> opt = ParseArgs(argc, argv);
  if (!opt.ok()) {
    std::fprintf(stderr, "%s\n", opt.status().ToString().c_str());
    PrintUsage(argv[0]);
    return 1;
  }
  Result<std::vector<AlgorithmKind>> algorithms = SelectAlgorithms(*opt);
  if (!algorithms.ok()) {
    std::fprintf(stderr, "%s\n", algorithms.status().ToString().c_str());
    return 1;
  }
  if (opt->model) {
    return RunModel(*opt, *algorithms);
  }
  if (opt->sweep) {
    std::fprintf(stderr,
                 "--sweep requires --model (engine sweeps live in "
                 "bench/)\n");
    return 1;
  }
  if (opt->serve) {
    return RunServe(*opt);
  }
  return RunEngine(*opt, *algorithms);
}

}  // namespace
}  // namespace adaptagg

int main(int argc, char** argv) { return adaptagg::Main(argc, argv); }
