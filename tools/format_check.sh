#!/usr/bin/env bash
# Checks (default) or applies (--fix) clang-format over all C++ sources.
#
#   tools/format_check.sh          # diff-style check, non-zero on drift
#   tools/format_check.sh --fix    # rewrite files in place
#
# Covers every tree — src/, tests/, tools/, bench/, examples/ — except
# the lint self-test fixtures, which are deliberate style violations.
#
# Exits 0 with a notice when clang-format is not installed, so the check
# is advisory on machines without LLVM but enforcing in CI images that
# have it. Style: .clang-format at the repo root (Google, 80 columns).
set -u
cd "$(dirname "$0")/.."

FMT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$FMT" >/dev/null 2>&1; then
  echo "format_check: '$FMT' not found; skipping (install LLVM or set" \
       "CLANG_FORMAT to enforce locally)"
  exit 0
fi

FILES=$(find src tests tools bench examples \
          \( -name '*.h' -o -name '*.cc' -o -name '*.cpp' \) \
          -not -path '*/lint_fixtures/*' | sort)

if [ "${1:-}" = "--fix" ]; then
  # shellcheck disable=SC2086
  "$FMT" -i $FILES
  echo "format_check: formatted $(echo "$FILES" | wc -l) files"
  exit 0
fi

STATUS=0
for f in $FILES; do
  if ! "$FMT" --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    STATUS=1
  fi
done
[ "$STATUS" -eq 0 ] && echo "format_check: all files clean"
exit "$STATUS"
