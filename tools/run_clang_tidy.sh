#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# compiled tree — src/, tests/, tools/, bench/, examples/ — using the
# compile database of an existing build tree. Lint self-test fixtures
# (deliberate violations, never compiled) are excluded.
#
#   tools/run_clang_tidy.sh [build_dir]     (default: build)
#
# Exits 0 with a notice when clang-tidy is not installed, so the check is
# advisory on machines without LLVM but enforcing in CI images that have
# it. All trees are kept at zero warnings (see DESIGN.md "Correctness
# tooling").
set -u
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
TIDY="${CLANG_TIDY:-clang-tidy}"

if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: '$TIDY' not found; skipping (install LLVM or set" \
       "CLANG_TIDY to enforce locally)"
  exit 0
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing —" \
       "configure first: cmake -B $BUILD_DIR -S ."
  exit 2
fi

FILES=$(find src tests tools bench examples -name '*.cc' \
          -not -path '*/lint_fixtures/*' | sort)
STATUS=0
for f in $FILES; do
  "$TIDY" -p "$BUILD_DIR" --quiet "$f" || STATUS=1
done
if [ "$STATUS" -ne 0 ]; then
  echo "run_clang_tidy: findings above must be fixed (zero-warning policy)"
fi
exit "$STATUS"
