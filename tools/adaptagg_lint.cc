// adaptagg_lint: mechanical enforcement of the project's conventions.
//
// Registered as a ctest (`ctest -R adaptagg_lint`), so a convention
// violation fails the suite the same way a broken unit test does. Pure
// standard library; usage:
//
//   adaptagg_lint <repo_root>
//
// Rules (see DESIGN.md "Correctness tooling" for the rationale):
//   G1  every header carries an include guard ADAPTAGG_<PATH>_H_ whose
//       #ifndef / #define / trailing "#endif  // <guard>" all agree;
//   G2  file names are lower_snake_case;
//   S1  no `throw` / `try` / `catch` anywhere under src/ — fallible code
//       returns Status / Result<T>;
//   S2  no `using namespace` in src/ or in any header;
//   S3  src/ lines fit in 80 columns; no tabs, trailing blanks, or CRLF;
//   S4  a src/ .cc with a sibling .h includes that .h first; a .cc
//       without one includes at least one header of its own subsystem;
//   S5  common/status.h and common/result.h keep `[[nodiscard]]` on
//       Status / Result<T> (the no-silently-dropped-status rule is then
//       enforced by the compiler on every call site);
//   S6  no std::cout / std::cerr in src/ outside common/logging.cc —
//       diagnostics go through ADAPTAGG_LOG.
//   S7  src/obs headers document every top-level type and free function
//       with a Doxygen /// comment (the observability subsystem is the
//       repo's instrumentation API surface; undocumented knobs rot).
//   S8  no bare `Recv(` call in src/ outside src/net/ — algorithm and
//       cluster code must use the deadline-bounded receives
//       (RecvWithDeadline / TryRecv / AwaitMessage), so a lost message
//       can never hang a run forever.
//   S9  no scalar data-plane call — `AddRecord(` / `AddProjected(` /
//       `AddPartial(` — in src/ outside the batch layer itself and the
//       allowlisted record-at-a-time producers; hot paths route whole
//       batches (AddBatch / AddIndices / Add*Batch) so the per-record
//       scatter loop cannot silently creep back in.
//
// Comment and string-literal contents are ignored by the token rules.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  int line;
  std::string rule;
  std::string message;
};

std::vector<Finding> g_findings;

void Report(const std::string& file, int line, const std::string& rule,
            const std::string& message) {
  g_findings.push_back({file, line, rule, message});
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Replaces the contents of comments and string/char literals with spaces
/// (newlines preserved) so token rules cannot fire inside them.
std::string StripCommentsAndStrings(const std::string& text) {
  std::string out = text;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_delim;  // delimiter of the active raw string, ")delim"
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          size_t paren = text.find('(', i + 2);
          if (paren != std::string::npos) {
            raw_delim = ")" + text.substr(i + 2, paren - i - 2) + "\"";
            state = State::kRawString;
            i = paren;
          }
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 0; k < raw_delim.size(); ++k) out[i + k] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `word` appears in `line` as a whole token.
bool HasToken(const std::string& line, const std::string& word) {
  size_t pos = 0;
  while ((pos = line.find(word, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    size_t end = pos + word.size();
    bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

/// ADAPTAGG_<relpath with / and . as _, uppercased>_ — src/ headers drop
/// the leading "src/" (historic convention), all other trees keep theirs.
std::string ExpectedGuard(const std::string& rel) {
  std::string base = rel;
  if (base.rfind("src/", 0) == 0) base = base.substr(4);
  std::string guard = "ADAPTAGG_";
  for (char c : base) {
    if (c == '/' || c == '.') {
      guard.push_back('_');
    } else {
      guard.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  guard.push_back('_');
  return guard;
}

void CheckHeaderGuard(const std::string& rel,
                      const std::vector<std::string>& lines) {
  const std::string guard = ExpectedGuard(rel);
  int ifndef_line = -1;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& l = lines[i];
    if (l.rfind("#ifndef ", 0) == 0) {
      if (l.substr(8) != guard) {
        Report(rel, static_cast<int>(i) + 1, "G1",
               "include guard is '" + l.substr(8) + "', expected '" +
                   guard + "'");
        return;
      }
      ifndef_line = static_cast<int>(i);
      break;
    }
    if (!l.empty() && l.rfind("//", 0) != 0) {
      Report(rel, static_cast<int>(i) + 1, "G1",
             "first non-comment line must be '#ifndef " + guard + "'");
      return;
    }
  }
  if (ifndef_line < 0) {
    Report(rel, 1, "G1", "missing include guard '" + guard + "'");
    return;
  }
  const size_t def = static_cast<size_t>(ifndef_line) + 1;
  if (def >= lines.size() || lines[def] != "#define " + guard) {
    Report(rel, static_cast<int>(def) + 1, "G1",
           "'#ifndef " + guard + "' must be followed by '#define " +
               guard + "'");
  }
  for (auto it = lines.rbegin(); it != lines.rend(); ++it) {
    if (it->empty()) continue;
    if (*it != "#endif  // " + guard) {
      Report(rel, static_cast<int>(lines.size()), "G1",
             "header must end with '#endif  // " + guard + "'");
    }
    return;
  }
}

void CheckFileName(const std::string& rel, const fs::path& path) {
  const std::string name = path.filename().string();
  for (char c : name) {
    if (std::islower(static_cast<unsigned char>(c)) == 0 &&
        std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '_' &&
        c != '.') {
      Report(rel, 1, "G2",
             "file name '" + name + "' is not lower_snake_case");
      return;
    }
  }
}

void CheckSrcTokens(const std::string& rel,
                    const std::vector<std::string>& stripped) {
  for (size_t i = 0; i < stripped.size(); ++i) {
    const std::string& l = stripped[i];
    for (const char* kw : {"throw", "try", "catch"}) {
      if (HasToken(l, kw)) {
        Report(rel, static_cast<int>(i) + 1, "S1",
               std::string("'") + kw +
                   "' is banned in src/ (return Status/Result instead)");
      }
    }
    if (l.find("using namespace") != std::string::npos) {
      Report(rel, static_cast<int>(i) + 1, "S2",
             "'using namespace' is banned in src/ and headers");
    }
  }
}

void CheckWhitespace(const std::string& rel, const std::string& raw,
                     const std::vector<std::string>& lines) {
  if (raw.find('\r') != std::string::npos) {
    Report(rel, 1, "S3", "CRLF line endings");
  }
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& l = lines[i];
    if (l.size() > 80) {
      Report(rel, static_cast<int>(i) + 1, "S3",
             "line is " + std::to_string(l.size()) + " columns (max 80)");
    }
    if (l.find('\t') != std::string::npos) {
      Report(rel, static_cast<int>(i) + 1, "S3", "tab character");
    }
    if (!l.empty() && (l.back() == ' ' || l.back() == '\t')) {
      Report(rel, static_cast<int>(i) + 1, "S3", "trailing whitespace");
    }
  }
  if (!raw.empty() && raw.back() != '\n') {
    Report(rel, static_cast<int>(lines.size()), "S3",
           "missing final newline");
  }
}

void CheckCcPairing(const fs::path& root, const std::string& rel,
                    const std::vector<std::string>& lines) {
  // rel is "src/<dir>/<stem>.cc"; project includes are written relative
  // to src/.
  const std::string in_src = rel.substr(4);
  const std::string stem = in_src.substr(0, in_src.size() - 3);
  const size_t slash = in_src.rfind('/');
  const std::string dir = slash == std::string::npos
                              ? std::string()
                              : in_src.substr(0, slash + 1);

  std::string first_include;
  bool includes_same_dir_header = false;
  for (const std::string& l : lines) {
    if (l.rfind("#include \"", 0) != 0) continue;
    const size_t close = l.find('"', 10);
    if (close == std::string::npos) continue;
    const std::string inc = l.substr(10, close - 10);
    if (first_include.empty()) first_include = inc;
    if (!dir.empty() && inc.rfind(dir, 0) == 0 &&
        inc.find('/', dir.size()) == std::string::npos) {
      includes_same_dir_header = true;
    }
  }

  if (fs::exists(root / "src" / (stem + ".h"))) {
    if (first_include != stem + ".h") {
      Report(rel, 1, "S4",
             "first include must be its own header \"" + stem + ".h\"");
    }
  } else if (!includes_same_dir_header) {
    Report(rel, 1, "S4",
           ".cc without a sibling .h must include a header of its own "
           "subsystem (" +
               dir + "*.h)");
  }
}

void CheckNodiscard(const fs::path& root) {
  const struct {
    const char* file;
    const char* token;
  } kRequired[] = {
      {"src/common/status.h", "class [[nodiscard]] Status"},
      {"src/common/result.h", "class [[nodiscard]] Result"},
  };
  for (const auto& req : kRequired) {
    const std::string text = ReadFile(root / req.file);
    if (text.find(req.token) == std::string::npos) {
      Report(req.file, 1, "S5",
             std::string("expected '") + req.token +
                 "' — the dropped-status compiler check depends on it");
    }
  }
}

void CheckNoStdout(const std::string& rel,
                   const std::vector<std::string>& stripped) {
  if (rel == "src/common/logging.cc") return;
  for (size_t i = 0; i < stripped.size(); ++i) {
    if (stripped[i].find("std::cout") != std::string::npos ||
        stripped[i].find("std::cerr") != std::string::npos) {
      Report(rel, static_cast<int>(i) + 1, "S6",
             "direct std::cout/std::cerr in src/ (use ADAPTAGG_LOG)");
    }
  }
}

/// S7: in src/obs headers, every top-level declaration — a class /
/// struct / enum at column 0, or a free-function declaration at column
/// 0 — must be immediately preceded by a Doxygen /// comment line.
/// Indented lines (members, parameters of multi-line declarations) are
/// out of scope; preprocessor lines, namespace braces, and closing
/// braces never need docs.
void CheckObsDoxygen(const std::string& rel,
                     const std::vector<std::string>& lines) {
  auto is_type_decl = [](const std::string& l) {
    return l.rfind("class ", 0) == 0 || l.rfind("struct ", 0) == 0 ||
           l.rfind("enum class ", 0) == 0;
  };
  auto is_function_decl = [](const std::string& l) {
    if (l.empty() || l[0] == ' ' || l[0] == '#' || l[0] == '}') {
      return false;
    }
    if (l.rfind("//", 0) == 0 || l.rfind("namespace", 0) == 0 ||
        l.rfind("using ", 0) == 0 || l.rfind("typedef ", 0) == 0) {
      return false;
    }
    return l.find('(') != std::string::npos;
  };
  std::string prev;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& l = lines[i];
    if (is_type_decl(l) || is_function_decl(l)) {
      if (prev.rfind("///", 0) != 0) {
        Report(rel, static_cast<int>(i) + 1, "S7",
               "src/obs declaration lacks a Doxygen /// comment");
      }
    }
    if (!l.empty()) prev = l;
  }
}

/// S8: an unbounded receive outside the transport layer reintroduces the
/// lost-message hang that failure detection exists to prevent. Matches
/// the whole token `Recv` directly followed by `(`; RecvWithDeadline and
/// TryRecv are distinct tokens and stay legal.
void CheckNoBareRecv(const std::string& rel,
                     const std::vector<std::string>& stripped) {
  for (size_t i = 0; i < stripped.size(); ++i) {
    const std::string& l = stripped[i];
    size_t pos = 0;
    while ((pos = l.find("Recv", pos)) != std::string::npos) {
      const bool left_ok = pos == 0 || !IsIdentChar(l[pos - 1]);
      const size_t end = pos + 4;
      size_t after = end;
      while (after < l.size() && l[after] == ' ') ++after;
      if (left_ok && after < l.size() && l[after] == '(' &&
          (end >= l.size() || !IsIdentChar(l[end]))) {
        Report(rel, static_cast<int>(i) + 1, "S8",
               "bare Recv() outside src/net — use RecvWithDeadline / "
               "TryRecv / AwaitMessage");
      }
      pos = end;
    }
  }
}

/// S9: scalar data-plane calls outside the batch layer. The tokens are
/// exact — AddBatch / AddIndices / AddProjectedBatch / AddPartialBatch
/// are distinct identifiers and stay legal everywhere. The allowlist is
/// the batch layer itself plus the record-at-a-time producers whose
/// sources are not batches (Finish-callback drains, sampling key sets,
/// spill replay).
bool ScalarDataPlaneAllowed(const std::string& rel) {
  return rel.rfind("src/agg/", 0) == 0 ||
         rel.rfind("src/cluster/exchange", 0) == 0 ||
         rel == "src/core/phases.h" || rel == "src/core/sampling.cc" ||
         rel == "src/core/sort_two_phase.cc";
}

void CheckNoScalarDataPlane(const std::string& rel,
                            const std::vector<std::string>& stripped) {
  for (size_t i = 0; i < stripped.size(); ++i) {
    const std::string& l = stripped[i];
    for (const char* word : {"AddRecord", "AddProjected", "AddPartial"}) {
      const size_t len = std::string(word).size();
      size_t pos = 0;
      while ((pos = l.find(word, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !IsIdentChar(l[pos - 1]);
        const size_t end = pos + len;
        size_t after = end;
        while (after < l.size() && l[after] == ' ') ++after;
        if (left_ok && after < l.size() && l[after] == '(' &&
            (end >= l.size() || !IsIdentChar(l[end]))) {
          Report(rel, static_cast<int>(i) + 1, "S9",
                 std::string("scalar ") + word +
                     "() outside the batch layer — route batches "
                     "(AddBatch / AddIndices / Add*Batch)");
        }
        pos = end;
      }
    }
  }
}

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? fs::path(argv[1]) : fs::path(".");
  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "adaptagg_lint: no src/ under '%s'\n",
                 root.string().c_str());
    return 2;
  }

  std::vector<std::string> rels;
  for (const char* tree : {"src", "tests", "tools", "bench", "examples"}) {
    if (!fs::exists(root / tree)) continue;
    for (const auto& entry :
         fs::recursive_directory_iterator(root / tree)) {
      if (!entry.is_regular_file() || !HasSourceExtension(entry.path())) {
        continue;
      }
      rels.push_back(
          fs::relative(entry.path(), root).generic_string());
    }
  }
  std::sort(rels.begin(), rels.end());

  for (const std::string& rel : rels) {
    const fs::path path = root / rel;
    const bool in_src = rel.rfind("src/", 0) == 0;
    const bool is_header = path.extension() == ".h";

    const std::string raw = ReadFile(path);
    const std::vector<std::string> lines = SplitLines(raw);
    const std::vector<std::string> stripped =
        SplitLines(StripCommentsAndStrings(raw));

    CheckFileName(rel, path);
    if (is_header) {
      CheckHeaderGuard(rel, lines);
      // src/ headers get the same check via CheckSrcTokens below.
      if (!in_src) {
        for (size_t i = 0; i < stripped.size(); ++i) {
          if (stripped[i].find("using namespace") != std::string::npos) {
            Report(rel, static_cast<int>(i) + 1, "S2",
                   "'using namespace' is banned in headers");
          }
        }
      }
    }
    if (in_src) {
      CheckSrcTokens(rel, stripped);
      CheckWhitespace(rel, raw, lines);
      CheckNoStdout(rel, stripped);
      if (rel.rfind("src/net/", 0) != 0) CheckNoBareRecv(rel, stripped);
      if (!ScalarDataPlaneAllowed(rel)) {
        CheckNoScalarDataPlane(rel, stripped);
      }
      if (path.extension() == ".cc") CheckCcPairing(root, rel, lines);
      if (is_header && rel.rfind("src/obs/", 0) == 0) {
        CheckObsDoxygen(rel, lines);
      }
    }
  }
  CheckNodiscard(root);

  for (const Finding& f : g_findings) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  if (!g_findings.empty()) {
    std::fprintf(stderr, "adaptagg_lint: %zu finding(s) in %zu files\n",
                 g_findings.size(), rels.size());
    return 1;
  }
  std::printf("adaptagg_lint: %zu files clean\n", rels.size());
  return 0;
}
