// adaptagg_lint: mechanical enforcement of the project's conventions.
//
// Registered as a ctest (`ctest -R adaptagg_lint`), so a convention
// violation fails the suite the same way a broken unit test does. Pure
// standard library; usage:
//
//   adaptagg_lint <repo_root>
//
// The linter runs in two passes. Pass 1 loads every source file and
// collects cross-file facts (identifiers declared with unordered
// container types anywhere under src/, so iteration-order rules can see
// through a header/impl split). Pass 2 applies the rules below. Rules
// that are sometimes legitimately violated carry an explicit allowlist
// (kAllowlist) pairing each exemption with its written justification;
// determinism (D) exemptions are capped at kMaxDeterminismExemptions so
// the list cannot silently grow into a bypass.
//
// Rules (see DESIGN.md "Correctness tooling" for the rationale):
//   G1  every header carries an include guard ADAPTAGG_<PATH>_H_ whose
//       #ifndef / #define / trailing "#endif  // <guard>" all agree;
//   G2  file names are lower_snake_case;
//   S1  no `throw` / `try` / `catch` anywhere under src/ — fallible code
//       returns Status / Result<T>;
//   S2  no `using namespace` in src/ or in any header;
//   S3  src/ lines fit in 80 columns; no tabs, trailing blanks, or CRLF;
//   S4  a src/ .cc with a sibling .h includes that .h first; a .cc
//       without one includes at least one header of its own subsystem;
//   S5  common/status.h and common/result.h keep `[[nodiscard]]` on
//       Status / Result<T> (the no-silently-dropped-status rule is then
//       enforced by the compiler on every call site);
//   S6  no std::cout / std::cerr in src/ outside common/logging.cc —
//       diagnostics go through ADAPTAGG_LOG.
//   S7  src/obs headers document every top-level type and free function
//       with a Doxygen /// comment (the observability subsystem is the
//       repo's instrumentation API surface; undocumented knobs rot).
//   S8  no bare `Recv(` call in src/ outside src/net/ — algorithm and
//       cluster code must use the deadline-bounded receives
//       (RecvWithDeadline / TryRecv / AwaitMessage), so a lost message
//       can never hang a run forever.
//   S9  no scalar data-plane call — `AddRecord(` / `AddProjected(` /
//       `AddPartial(` — in src/ outside the batch layer itself and the
//       allowlisted record-at-a-time producers; hot paths route whole
//       batches (AddBatch / AddIndices / Add*Batch) so the per-record
//       scatter loop cannot silently creep back in.
//   S10 locks in src/ are adaptagg::Mutex (common/mutex.h), never raw
//       std::mutex / std::shared_mutex — the raw types carry no
//       capability attributes, so clang thread-safety analysis cannot
//       see them — and every Mutex declaration has at least one sibling
//       annotated ADAPTAGG_GUARDED_BY(that mutex). A mutex guarding a
//       non-member resource (e.g. a C stream) takes an allowlist entry.
//   S11 no raw SIMD intrinsics in src/ outside src/common/simd.h — no
//       <immintrin.h> / <x86intrin.h> / <emmintrin.h> / <arm_neon.h>
//       includes and no _mm_ / _mm256_ / _mm512_ / vld1q / vst1q
//       identifiers. Vector code goes through the portable dispatch
//       layer so the scalar fallback and forced-scalar override stay
//       exhaustive.
//   S12 no direct Cluster::Run call site in src/, tools/, or examples/
//       outside src/cluster (the definition), src/serve (the layer
//       that wraps it), and the allowlisted Query::Execute — production
//       paths submit through ClusterService (admission control, session
//       isolation, result cache) or the Query API. bench/ and tests/
//       measure and pin the one-shot path deliberately and stay exempt.
//   S13 checkpoint-file I/O is confined to the checkpoint module: no
//       `CheckpointStore` token in src/ outside src/storage/checkpoint.*
//       (the store) and src/cluster/recovery.* (the recovery runtime
//       that owns it). Everything else goes through RecoveryNode, so
//       checkpoint durability invariants (tail CRC, latest-pointer
//       flip ordering, dedicated disks) have exactly one enforcement
//       point.
//   S14 the shared merge table's concurrent upsert surface is confined
//       to its module: no `SharedAggHashTable` / `UpsertPartialConcurrent`
//       token in src/ outside src/agg/hash_table.* (the table) and
//       src/core/merge_topology.* (the merge plane that owns it). The
//       CAS claim/publish protocol and stripe-lock discipline have
//       exactly one enforcement point; everything else reaches the
//       shared topology through MergePlane.
//   D1  no wall-clock reads in src/ (steady_clock / system_clock /
//       WallSeconds / ...): simulated results must depend only on the
//       CostClock. Wall time is allowlisted exactly where it belongs —
//       receive deadlines, heartbeat/liveness detection, and the obs
//       wall-span source.
//   D2  no ad-hoc randomness in src/ (random_device / mt19937 / rand /
//       ...): all randomness flows through the seeded Prng in
//       src/common/random so runs replay bit-identically.
//   D3  no range-for over a std::unordered_{map,set} in src/: hash
//       iteration order is implementation-defined, so loops that emit,
//       merge, or ship data must sort first (or iterate a deterministic
//       container). Detection is cross-file: containers declared in a
//       header are recognized when iterated in the .cc.
//
// Comment and string-literal contents are ignored by the token rules.
// Fixture trees under a "lint_fixtures" directory are skipped when
// linting the repo (the lint self-test runs the binary *on* them).

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  int line;
  std::string rule;
  std::string message;
};

std::vector<Finding> g_findings;

void Report(const std::string& file, int line, const std::string& rule,
            const std::string& message) {
  g_findings.push_back({file, line, rule, message});
}

// ---------------------------------------------------------------------
// Allowlist: every entry is one (rule, file) exemption with its written
// justification. Keep the `why` honest — it is the audit trail reviewers
// read instead of the suppressed diagnostic.
// ---------------------------------------------------------------------

struct AllowlistEntry {
  const char* rule;
  const char* file;
  const char* why;
};

constexpr AllowlistEntry kAllowlist[] = {
    {"D1", "src/net/channel.cc",
     "receive deadlines bound real blocking so a lost message cannot "
     "hang the run; they never feed simulated time"},
    {"D1", "src/obs/trace_recorder.h",
     "declares WallSeconds(), the one sanctioned wall-time source for "
     "observability spans"},
    {"D1", "src/obs/trace_recorder.cc",
     "implements WallSeconds() and stamps trace wall timelines; wall "
     "time never feeds simulated results"},
    {"D1", "src/cluster/node_context.cc",
     "heartbeat and peer-liveness deadlines are wall time by design: "
     "failure detection watches the real world, not the model"},
    {"D1", "src/cluster/cluster.cc",
     "measures run wall time and fixes the cluster-wide trace wall "
     "epoch; reported beside, never inside, simulated time"},
    {"D1", "src/cluster/run_assembly.cc",
     "stamps the wall time of a run's first node failure so abort "
     "latency is measurable; reported beside, never inside, simulated "
     "time"},
    {"D1", "src/serve/cluster_service.cc",
     "serving latency (submit-to-complete) and per-session trace "
     "epochs are wall time by definition; modeled per-query time still "
     "comes only off each session's CostClocks"},
    {"D3", "src/agg/reference.cc",
     "the oracle accumulates into an unordered_map and sorts the "
     "result rows immediately after the loop"},
    {"D3", "src/storage/disk.cc",
     "destructor teardown closes and unlinks every open file; order "
     "has no observable effect"},
    {"S10", "src/common/logging.cc",
     "g_emit_mutex serializes writes to the stderr stream itself; "
     "there is no member to carry ADAPTAGG_GUARDED_BY"},
};

/// Hard cap on determinism-rule (D*) exemptions: ISSUE the analyzer was
/// built under allows at most 10 justified entries. Exceeding it is a
/// lint failure in its own right, so the allowlist cannot become the
/// easy way out.
constexpr size_t kMaxDeterminismExemptions = 10;

bool Allowlisted(const char* rule, const std::string& rel) {
  for (const AllowlistEntry& e : kAllowlist) {
    if (rel == e.file && std::string(rule) == e.rule) return true;
  }
  return false;
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Replaces the contents of comments and string/char literals with spaces
/// (newlines preserved) so token rules cannot fire inside them.
std::string StripCommentsAndStrings(const std::string& text) {
  std::string out = text;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_delim;  // delimiter of the active raw string, ")delim"
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          size_t paren = text.find('(', i + 2);
          if (paren != std::string::npos) {
            raw_delim = ")" + text.substr(i + 2, paren - i - 2) + "\"";
            state = State::kRawString;
            i = paren;
          }
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          // A quote directly after an identifier character is a digit
          // separator (100'000) or a literal suffix position, not a
          // char-literal open; treating it as one would swallow real
          // code up to the next quote and hide violations from every
          // token rule.
          if (i == 0 ||
              (!std::isalnum(static_cast<unsigned char>(text[i - 1])) &&
               text[i - 1] != '_')) {
            state = State::kChar;
          }
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 0; k < raw_delim.size(); ++k) out[i + k] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `word` appears in `line` as a whole token.
bool HasToken(const std::string& line, const std::string& word) {
  size_t pos = 0;
  while ((pos = line.find(word, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    size_t end = pos + word.size();
    bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

/// True when `word` appears as a whole token immediately followed
/// (modulo spaces) by '(' — i.e. as a call or declarator, not as part
/// of a longer identifier.
bool HasCallToken(const std::string& line, const std::string& word) {
  size_t pos = 0;
  while ((pos = line.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    size_t after = end;
    while (after < line.size() && line[after] == ' ') ++after;
    if (left_ok && right_ok && after < line.size() && line[after] == '(') {
      return true;
    }
    pos = end;
  }
  return false;
}

int LineOfOffset(const std::string& text, size_t offset) {
  return 1 + static_cast<int>(
                 std::count(text.begin(),
                            text.begin() + static_cast<ptrdiff_t>(offset),
                            '\n'));
}

/// One loaded source file: raw bytes plus the comment/string-stripped
/// view, split both ways. Loaded once in pass 1 so cross-file rules and
/// per-file rules share the parse.
struct FileData {
  std::string rel;
  fs::path path;
  bool in_src = false;
  bool is_header = false;
  std::string raw;
  std::string stripped;
  std::vector<std::string> lines;
  std::vector<std::string> stripped_lines;
};

/// ADAPTAGG_<relpath with / and . as _, uppercased>_ — src/ headers drop
/// the leading "src/" (historic convention), all other trees keep theirs.
std::string ExpectedGuard(const std::string& rel) {
  std::string base = rel;
  if (base.rfind("src/", 0) == 0) base = base.substr(4);
  std::string guard = "ADAPTAGG_";
  for (char c : base) {
    if (c == '/' || c == '.') {
      guard.push_back('_');
    } else {
      guard.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  guard.push_back('_');
  return guard;
}

void CheckHeaderGuard(const std::string& rel,
                      const std::vector<std::string>& lines) {
  const std::string guard = ExpectedGuard(rel);
  int ifndef_line = -1;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& l = lines[i];
    if (l.rfind("#ifndef ", 0) == 0) {
      if (l.substr(8) != guard) {
        Report(rel, static_cast<int>(i) + 1, "G1",
               "include guard is '" + l.substr(8) + "', expected '" +
                   guard + "'");
        return;
      }
      ifndef_line = static_cast<int>(i);
      break;
    }
    if (!l.empty() && l.rfind("//", 0) != 0) {
      Report(rel, static_cast<int>(i) + 1, "G1",
             "first non-comment line must be '#ifndef " + guard + "'");
      return;
    }
  }
  if (ifndef_line < 0) {
    Report(rel, 1, "G1", "missing include guard '" + guard + "'");
    return;
  }
  const size_t def = static_cast<size_t>(ifndef_line) + 1;
  if (def >= lines.size() || lines[def] != "#define " + guard) {
    Report(rel, static_cast<int>(def) + 1, "G1",
           "'#ifndef " + guard + "' must be followed by '#define " +
               guard + "'");
  }
  for (auto it = lines.rbegin(); it != lines.rend(); ++it) {
    if (it->empty()) continue;
    if (*it != "#endif  // " + guard) {
      Report(rel, static_cast<int>(lines.size()), "G1",
             "header must end with '#endif  // " + guard + "'");
    }
    return;
  }
}

void CheckFileName(const std::string& rel, const fs::path& path) {
  const std::string name = path.filename().string();
  for (char c : name) {
    if (std::islower(static_cast<unsigned char>(c)) == 0 &&
        std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '_' &&
        c != '.') {
      Report(rel, 1, "G2",
             "file name '" + name + "' is not lower_snake_case");
      return;
    }
  }
}

void CheckSrcTokens(const std::string& rel,
                    const std::vector<std::string>& stripped) {
  for (size_t i = 0; i < stripped.size(); ++i) {
    const std::string& l = stripped[i];
    for (const char* kw : {"throw", "try", "catch"}) {
      if (HasToken(l, kw)) {
        Report(rel, static_cast<int>(i) + 1, "S1",
               std::string("'") + kw +
                   "' is banned in src/ (return Status/Result instead)");
      }
    }
    if (l.find("using namespace") != std::string::npos) {
      Report(rel, static_cast<int>(i) + 1, "S2",
             "'using namespace' is banned in src/ and headers");
    }
  }
}

void CheckWhitespace(const std::string& rel, const std::string& raw,
                     const std::vector<std::string>& lines) {
  if (raw.find('\r') != std::string::npos) {
    Report(rel, 1, "S3", "CRLF line endings");
  }
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& l = lines[i];
    if (l.size() > 80) {
      Report(rel, static_cast<int>(i) + 1, "S3",
             "line is " + std::to_string(l.size()) + " columns (max 80)");
    }
    if (l.find('\t') != std::string::npos) {
      Report(rel, static_cast<int>(i) + 1, "S3", "tab character");
    }
    if (!l.empty() && (l.back() == ' ' || l.back() == '\t')) {
      Report(rel, static_cast<int>(i) + 1, "S3", "trailing whitespace");
    }
  }
  if (!raw.empty() && raw.back() != '\n') {
    Report(rel, static_cast<int>(lines.size()), "S3",
           "missing final newline");
  }
}

void CheckCcPairing(const fs::path& root, const std::string& rel,
                    const std::vector<std::string>& lines) {
  // rel is "src/<dir>/<stem>.cc"; project includes are written relative
  // to src/.
  const std::string in_src = rel.substr(4);
  const std::string stem = in_src.substr(0, in_src.size() - 3);
  const size_t slash = in_src.rfind('/');
  const std::string dir = slash == std::string::npos
                              ? std::string()
                              : in_src.substr(0, slash + 1);

  std::string first_include;
  bool includes_same_dir_header = false;
  for (const std::string& l : lines) {
    if (l.rfind("#include \"", 0) != 0) continue;
    const size_t close = l.find('"', 10);
    if (close == std::string::npos) continue;
    const std::string inc = l.substr(10, close - 10);
    if (first_include.empty()) first_include = inc;
    if (!dir.empty() && inc.rfind(dir, 0) == 0 &&
        inc.find('/', dir.size()) == std::string::npos) {
      includes_same_dir_header = true;
    }
  }

  if (fs::exists(root / "src" / (stem + ".h"))) {
    if (first_include != stem + ".h") {
      Report(rel, 1, "S4",
             "first include must be its own header \"" + stem + ".h\"");
    }
  } else if (!includes_same_dir_header) {
    Report(rel, 1, "S4",
           ".cc without a sibling .h must include a header of its own "
           "subsystem (" +
               dir + "*.h)");
  }
}

void CheckNodiscard(const fs::path& root) {
  const struct {
    const char* file;
    const char* token;
  } kRequired[] = {
      {"src/common/status.h", "class [[nodiscard]] Status"},
      {"src/common/result.h", "class [[nodiscard]] Result"},
  };
  for (const auto& req : kRequired) {
    const std::string text = ReadFile(root / req.file);
    if (text.find(req.token) == std::string::npos) {
      Report(req.file, 1, "S5",
             std::string("expected '") + req.token +
                 "' — the dropped-status compiler check depends on it");
    }
  }
}

void CheckNoStdout(const std::string& rel,
                   const std::vector<std::string>& stripped) {
  if (rel == "src/common/logging.cc") return;
  for (size_t i = 0; i < stripped.size(); ++i) {
    if (stripped[i].find("std::cout") != std::string::npos ||
        stripped[i].find("std::cerr") != std::string::npos) {
      Report(rel, static_cast<int>(i) + 1, "S6",
             "direct std::cout/std::cerr in src/ (use ADAPTAGG_LOG)");
    }
  }
}

/// S7: in src/obs headers, every top-level declaration — a class /
/// struct / enum at column 0, or a free-function declaration at column
/// 0 — must be immediately preceded by a Doxygen /// comment line.
/// Indented lines (members, parameters of multi-line declarations) are
/// out of scope; preprocessor lines, namespace braces, and closing
/// braces never need docs.
void CheckObsDoxygen(const std::string& rel,
                     const std::vector<std::string>& lines) {
  auto is_type_decl = [](const std::string& l) {
    return l.rfind("class ", 0) == 0 || l.rfind("struct ", 0) == 0 ||
           l.rfind("enum class ", 0) == 0;
  };
  auto is_function_decl = [](const std::string& l) {
    if (l.empty() || l[0] == ' ' || l[0] == '#' || l[0] == '}') {
      return false;
    }
    if (l.rfind("//", 0) == 0 || l.rfind("namespace", 0) == 0 ||
        l.rfind("using ", 0) == 0 || l.rfind("typedef ", 0) == 0) {
      return false;
    }
    return l.find('(') != std::string::npos;
  };
  std::string prev;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& l = lines[i];
    if (is_type_decl(l) || is_function_decl(l)) {
      if (prev.rfind("///", 0) != 0) {
        Report(rel, static_cast<int>(i) + 1, "S7",
               "src/obs declaration lacks a Doxygen /// comment");
      }
    }
    if (!l.empty()) prev = l;
  }
}

/// S8: an unbounded receive outside the transport layer reintroduces the
/// lost-message hang that failure detection exists to prevent. Matches
/// the whole token `Recv` directly followed by `(`; RecvWithDeadline and
/// TryRecv are distinct tokens and stay legal.
void CheckNoBareRecv(const std::string& rel,
                     const std::vector<std::string>& stripped) {
  for (size_t i = 0; i < stripped.size(); ++i) {
    if (HasCallToken(stripped[i], "Recv")) {
      Report(rel, static_cast<int>(i) + 1, "S8",
             "bare Recv() outside src/net — use RecvWithDeadline / "
             "TryRecv / AwaitMessage");
    }
  }
}

/// S12: direct Cluster::Run call sites. The one-shot entry point stays
/// for benches and tests (which measure and pin it), for src/cluster
/// itself, for the serving layer built on the same assembly helpers,
/// and for Query::Execute; everything else submits through
/// ClusterService or the Query API so no production path bypasses
/// admission control and session isolation. Detection: a `.Run(`,
/// `->Run(`, or `::Run(` whose receiver identifier contains "cluster"
/// (case-insensitive).
bool ClusterRunAllowed(const std::string& rel) {
  return rel.rfind("src/cluster/", 0) == 0 ||
         rel.rfind("src/serve/", 0) == 0 ||
         rel.rfind("bench/", 0) == 0 || rel.rfind("tests/", 0) == 0 ||
         rel == "src/core/query.cc";
}

void CheckNoDirectClusterRun(const std::string& rel,
                             const std::vector<std::string>& stripped) {
  for (size_t i = 0; i < stripped.size(); ++i) {
    const std::string& l = stripped[i];
    size_t pos = 0;
    while ((pos = l.find("Run(", pos)) != std::string::npos) {
      const size_t after = pos + 4;
      size_t r = pos;
      if (r >= 1 && l[r - 1] == '.') {
        r -= 1;
      } else if (r >= 2 && (l.compare(r - 2, 2, "->") == 0 ||
                            l.compare(r - 2, 2, "::") == 0)) {
        r -= 2;
      } else {
        pos = after;
        continue;
      }
      size_t b = r;
      while (b > 0 && IsIdentChar(l[b - 1])) --b;
      std::string receiver = l.substr(b, r - b);
      for (char& c : receiver) {
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
      }
      if (receiver.find("cluster") != std::string::npos) {
        Report(rel, static_cast<int>(i) + 1, "S12",
               "direct Cluster::Run call site — submit through "
               "ClusterService (or Query::Execute) so the query gets "
               "admission control and session isolation");
      }
      pos = after;
    }
  }
}

/// S13: checkpoint-file I/O outside the checkpoint module. The store's
/// durability invariants — tail CRC on every page, write-new-then-flip
/// latest ordering, dedicated non-charged disks — hold only when every
/// reader and writer goes through RecoveryNode; a second direct user
/// would have to re-implement them. Detection: the `CheckpointStore`
/// identifier anywhere in src/ outside the store itself and the
/// recovery runtime that owns it.
bool CheckpointIoAllowed(const std::string& rel) {
  return rel.rfind("src/storage/checkpoint.", 0) == 0 ||
         rel.rfind("src/cluster/recovery.", 0) == 0;
}

void CheckNoCheckpointIo(const std::string& rel,
                         const std::vector<std::string>& stripped) {
  constexpr const char* kToken = "CheckpointStore";
  const size_t len = std::string(kToken).size();
  for (size_t i = 0; i < stripped.size(); ++i) {
    const std::string& l = stripped[i];
    size_t pos = 0;
    while ((pos = l.find(kToken, pos)) != std::string::npos) {
      const bool start_ok = pos == 0 || !IsIdentChar(l[pos - 1]);
      const bool end_ok =
          pos + len >= l.size() || !IsIdentChar(l[pos + len]);
      if (start_ok && end_ok) {
        Report(rel, static_cast<int>(i) + 1, "S13",
               "CheckpointStore outside the checkpoint module — go "
               "through RecoveryNode so checkpoint durability "
               "invariants stay in one place");
      }
      pos += len;
    }
  }
}

/// S14: the shared merge table's concurrent surface outside its module.
/// UpsertPartialConcurrent's CAS claim/publish protocol and the stripe
/// locks behind it are correct only under the merge plane's barrier
/// discipline (quiesce before any drain); a second direct user would
/// have to re-implement that discipline. Detection: the type or method
/// token anywhere in src/ outside the table and the merge plane.
bool SharedMergeAllowed(const std::string& rel) {
  return rel.rfind("src/agg/hash_table.", 0) == 0 ||
         rel.rfind("src/core/merge_topology.", 0) == 0;
}

void CheckNoSharedMergeEscape(const std::string& rel,
                              const std::vector<std::string>& stripped) {
  for (size_t i = 0; i < stripped.size(); ++i) {
    for (const char* token :
         {"SharedAggHashTable", "UpsertPartialConcurrent"}) {
      if (HasToken(stripped[i], token)) {
        Report(rel, static_cast<int>(i) + 1, "S14",
               std::string(token) +
                   " outside the shared-merge module — go through "
                   "MergePlane so the concurrent upsert protocol has "
                   "one enforcement point");
      }
    }
  }
}

/// S9: scalar data-plane calls outside the batch layer. The tokens are
/// exact — AddBatch / AddIndices / AddProjectedBatch / AddPartialBatch
/// are distinct identifiers and stay legal everywhere. The allowlist is
/// the batch layer itself plus the record-at-a-time producers whose
/// sources are not batches (Finish-callback drains, sampling key sets,
/// spill replay).
bool ScalarDataPlaneAllowed(const std::string& rel) {
  return rel.rfind("src/agg/", 0) == 0 ||
         rel.rfind("src/cluster/exchange", 0) == 0 ||
         rel.rfind("src/core/merge_topology.", 0) == 0 ||
         rel == "src/core/phases.h" || rel == "src/core/sampling.cc" ||
         rel == "src/core/sort_two_phase.cc";
}

void CheckNoScalarDataPlane(const std::string& rel,
                            const std::vector<std::string>& stripped) {
  for (size_t i = 0; i < stripped.size(); ++i) {
    for (const char* word : {"AddRecord", "AddProjected", "AddPartial"}) {
      if (HasCallToken(stripped[i], word)) {
        Report(rel, static_cast<int>(i) + 1, "S9",
               std::string("scalar ") + word +
                   "() outside the batch layer — route batches "
                   "(AddBatch / AddIndices / Add*Batch)");
      }
    }
  }
}

/// S11: raw SIMD intrinsics outside the portable layer. Everything
/// vectorized routes through src/common/simd.h, which owns the runtime
/// dispatch and the scalar fallback; an intrinsic used anywhere else is
/// a code path the forced-scalar override cannot reach.
void CheckNoRawIntrinsics(const std::string& rel,
                          const std::vector<std::string>& stripped) {
  for (size_t i = 0; i < stripped.size(); ++i) {
    const std::string& l = stripped[i];
    for (const char* header :
         {"<immintrin.h>", "<x86intrin.h>", "<emmintrin.h>",
          "<arm_neon.h>"}) {
      if (l.find("#include") != std::string::npos &&
          l.find(header) != std::string::npos) {
        Report(rel, static_cast<int>(i) + 1, "S11",
               std::string("raw intrinsics header ") + header +
                   " outside src/common/simd.h — use the portable "
                   "simd:: layer");
      }
    }
    for (const char* prefix :
         {"_mm_", "_mm256_", "_mm512_", "vld1q", "vst1q"}) {
      size_t pos = l.find(prefix);
      while (pos != std::string::npos) {
        if (pos == 0 || !IsIdentChar(l[pos - 1])) {
          Report(rel, static_cast<int>(i) + 1, "S11",
                 std::string("raw intrinsic ") + prefix +
                     "... outside src/common/simd.h — use the portable "
                     "simd:: layer");
          break;  // one finding per line is enough
        }
        pos = l.find(prefix, pos + 1);
      }
    }
  }
}

/// S10: every lock in src/ must be visible to clang thread-safety
/// analysis. Raw std::mutex / std::shared_mutex carry no capability
/// attributes, so declaring (or even naming) one outside the annotated
/// wrapper is a finding; an adaptagg::Mutex declaration must have at
/// least one sibling annotated ADAPTAGG_GUARDED_BY(that mutex) in the
/// same file, or an allowlist entry explaining what it guards instead.
void CheckMutexAnnotations(const FileData& f) {
  if (f.rel == "src/common/mutex.h") return;  // wraps the raw type
  const bool allowlisted = Allowlisted("S10", f.rel);
  for (size_t i = 0; i < f.stripped_lines.size(); ++i) {
    const std::string& l = f.stripped_lines[i];
    for (const char* raw_type : {"std::mutex", "std::shared_mutex"}) {
      if (HasToken(l, raw_type) && !allowlisted) {
        Report(f.rel, static_cast<int>(i) + 1, "S10",
               std::string(raw_type) +
                   " is invisible to thread-safety analysis — use "
                   "adaptagg::Mutex (common/mutex.h)");
      }
    }
    // A declaration `Mutex <name>;` (optionally `mutable`-qualified).
    size_t pos = 0;
    while ((pos = l.find("Mutex", pos)) != std::string::npos) {
      const bool left_ok = pos == 0 || !IsIdentChar(l[pos - 1]);
      size_t j = pos + 5;
      if (!left_ok || j >= l.size() || l[j] != ' ') {
        pos = j;
        continue;
      }
      while (j < l.size() && l[j] == ' ') ++j;
      const size_t name_begin = j;
      while (j < l.size() && IsIdentChar(l[j])) ++j;
      const std::string name = l.substr(name_begin, j - name_begin);
      while (j < l.size() && l[j] == ' ') ++j;
      if (!name.empty() && j < l.size() && l[j] == ';') {
        if (f.stripped.find("ADAPTAGG_GUARDED_BY(" + name + ")") ==
                std::string::npos &&
            !allowlisted) {
          Report(f.rel, static_cast<int>(i) + 1, "S10",
                 "Mutex '" + name +
                     "' has no ADAPTAGG_GUARDED_BY(" + name +
                     ") sibling — annotate what it guards (or "
                     "allowlist with a justification)");
        }
      }
      pos = j;
    }
  }
}

/// D1: wall-clock reads. Everything an algorithm observes must come off
/// the CostClock, so a run replays identically on any host; wall time
/// exists only behind the allowlisted deadline/heartbeat/obs files.
void CheckWallTime(const FileData& f) {
  static const char* kBanned[] = {
      "steady_clock",  "system_clock", "high_resolution_clock",
      "clock_gettime", "gettimeofday", "timespec_get",
      "WallSeconds",
  };
  for (size_t i = 0; i < f.stripped_lines.size(); ++i) {
    const std::string& l = f.stripped_lines[i];
    for (const char* word : kBanned) {
      if (HasToken(l, word)) {
        Report(f.rel, static_cast<int>(i) + 1, "D1",
               std::string("wall-clock source '") + word +
                   "' in src/ — simulated results must depend only on "
                   "the CostClock");
      }
    }
    if (HasCallToken(l, "time")) {
      Report(f.rel, static_cast<int>(i) + 1, "D1",
             "wall-clock source 'time()' in src/ — simulated results "
             "must depend only on the CostClock");
    }
  }
}

/// D2: randomness sources. All randomness flows through the seeded Prng
/// (src/common/random), so a run is a pure function of its seed.
void CheckRandomness(const FileData& f) {
  if (f.rel == "src/common/random.h" || f.rel == "src/common/random.cc") {
    return;  // the sanctioned seeded source
  }
  static const char* kBanned[] = {
      "random_device", "mt19937",  "mt19937_64", "default_random_engine",
      "srand",         "drand48",  "lrand48",
  };
  for (size_t i = 0; i < f.stripped_lines.size(); ++i) {
    const std::string& l = f.stripped_lines[i];
    for (const char* word : kBanned) {
      if (HasToken(l, word)) {
        Report(f.rel, static_cast<int>(i) + 1, "D2",
               std::string("randomness source '") + word +
                   "' in src/ — use the seeded Prng (common/random.h)");
      }
    }
    if (HasCallToken(l, "rand")) {
      Report(f.rel, static_cast<int>(i) + 1, "D2",
             "randomness source 'rand()' in src/ — use the seeded Prng "
             "(common/random.h)");
    }
  }
}

/// Pass-1 fact collector: identifiers declared anywhere in src/ with a
/// std::unordered_{map,set,multimap,multiset} type. The set is global
/// across files so D3 sees a member declared in a header and iterated
/// in the matching .cc. (An identifier that collides with an unrelated
/// deterministic container elsewhere is a tolerated false positive:
/// rename it or allowlist the file.)
void CollectUnorderedDecls(const FileData& f,
                           std::set<std::string>* idents) {
  static const char* kTypes[] = {"unordered_map", "unordered_set",
                                 "unordered_multimap",
                                 "unordered_multiset"};
  const std::string& text = f.stripped;
  for (const char* type : kTypes) {
    const std::string word(type);
    size_t pos = 0;
    while ((pos = text.find(word, pos)) != std::string::npos) {
      const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
      size_t i = pos + word.size();
      if (!left_ok || i >= text.size() || text[i] != '<') {
        pos = i;
        continue;
      }
      int depth = 0;
      while (i < text.size()) {
        if (text[i] == '<') {
          ++depth;
        } else if (text[i] == '>') {
          --depth;
          if (depth == 0) {
            ++i;
            break;
          }
        }
        ++i;
      }
      while (i < text.size() &&
             (text[i] == ' ' || text[i] == '\n' || text[i] == '&' ||
              text[i] == '*')) {
        ++i;
      }
      const size_t name_begin = i;
      while (i < text.size() && IsIdentChar(text[i])) ++i;
      if (i > name_begin) {
        size_t j = i;
        while (j < text.size() && text[j] == ' ') ++j;
        // An identifier followed by '(' is a function returning the
        // container, not a variable holding one.
        if (j >= text.size() || text[j] != '(') {
          idents->insert(text.substr(name_begin, i - name_begin));
        }
      }
      pos = i;
    }
  }
}

/// D3: range-for over an unordered container. Works on the stripped
/// whole-file text so multi-line for-headers parse; the range
/// expression's trailing identifier is resolved against the cross-file
/// declaration set from pass 1.
void CheckUnorderedIteration(const FileData& f,
                             const std::set<std::string>& idents) {
  const std::string& text = f.stripped;
  size_t pos = 0;
  while ((pos = text.find("for", pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    size_t i = pos + 3;
    if (!left_ok || (i < text.size() && IsIdentChar(text[i]))) {
      pos = i;
      continue;
    }
    while (i < text.size() &&
           (text[i] == ' ' || text[i] == '\n')) {
      ++i;
    }
    if (i >= text.size() || text[i] != '(') {
      pos = i;
      continue;
    }
    // Find the matching close paren and the last depth-1 ':' that is
    // not part of a '::'.
    int depth = 0;
    size_t colon = std::string::npos;
    size_t close = std::string::npos;
    for (size_t k = i; k < text.size(); ++k) {
      const char c = text[k];
      if (c == '(') {
        ++depth;
      } else if (c == ')') {
        --depth;
        if (depth == 0) {
          close = k;
          break;
        }
      } else if (c == ':' && depth == 1) {
        const bool dbl = (k + 1 < text.size() && text[k + 1] == ':') ||
                         (k > 0 && text[k - 1] == ':');
        if (!dbl) colon = k;
      }
    }
    if (close == std::string::npos || colon == std::string::npos) {
      pos = i;
      continue;
    }
    std::string range = text.substr(colon + 1, close - colon - 1);
    const int line = LineOfOffset(text, pos);
    if (range.find("unordered_") != std::string::npos) {
      Report(f.rel, line, "D3",
             "range-for over an unordered container — hash iteration "
             "order is implementation-defined; sort first");
    } else {
      size_t e = range.size();
      while (e > 0 && (range[e - 1] == ' ' || range[e - 1] == '\n')) --e;
      size_t b = e;
      while (b > 0 && IsIdentChar(range[b - 1])) --b;
      const std::string ident = range.substr(b, e - b);
      if (!ident.empty() && idents.count(ident) > 0) {
        Report(f.rel, line, "D3",
               "range-for over '" + ident +
                   "', declared as an unordered container — hash "
                   "iteration order is implementation-defined; sort "
                   "first");
      }
    }
    pos = close;
  }
}

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? fs::path(argv[1]) : fs::path(".");
  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "adaptagg_lint: no src/ under '%s'\n",
                 root.string().c_str());
    return 2;
  }

  size_t d_exemptions = 0;
  for (const AllowlistEntry& e : kAllowlist) {
    if (e.rule[0] == 'D') ++d_exemptions;
  }
  if (d_exemptions > kMaxDeterminismExemptions) {
    std::fprintf(stderr,
                 "adaptagg_lint: %zu determinism exemptions exceed the "
                 "cap of %zu — fix code instead of growing the "
                 "allowlist\n",
                 d_exemptions, kMaxDeterminismExemptions);
    return 2;
  }

  // Pass 1: load every file. Fixture trees for the lint self-test are
  // deliberate rule violations; skip them here (the self-test points
  // the binary directly at them).
  std::vector<FileData> files;
  for (const char* tree : {"src", "tests", "tools", "bench", "examples"}) {
    if (!fs::exists(root / tree)) continue;
    for (const auto& entry :
         fs::recursive_directory_iterator(root / tree)) {
      if (!entry.is_regular_file() || !HasSourceExtension(entry.path())) {
        continue;
      }
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      if (rel.find("lint_fixtures") != std::string::npos) continue;
      FileData f;
      f.rel = rel;
      f.path = entry.path();
      f.in_src = rel.rfind("src/", 0) == 0;
      f.is_header = entry.path().extension() == ".h";
      f.raw = ReadFile(entry.path());
      f.stripped = StripCommentsAndStrings(f.raw);
      f.lines = SplitLines(f.raw);
      f.stripped_lines = SplitLines(f.stripped);
      files.push_back(std::move(f));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const FileData& a, const FileData& b) {
              return a.rel < b.rel;
            });

  // Cross-file facts for the determinism rules.
  std::set<std::string> unordered_idents;
  for (const FileData& f : files) {
    if (f.in_src) CollectUnorderedDecls(f, &unordered_idents);
  }

  // Pass 2: rules.
  for (const FileData& f : files) {
    CheckFileName(f.rel, f.path);
    if (f.is_header) {
      CheckHeaderGuard(f.rel, f.lines);
      // src/ headers get the same check via CheckSrcTokens below.
      if (!f.in_src) {
        for (size_t i = 0; i < f.stripped_lines.size(); ++i) {
          if (f.stripped_lines[i].find("using namespace") !=
              std::string::npos) {
            Report(f.rel, static_cast<int>(i) + 1, "S2",
                   "'using namespace' is banned in headers");
          }
        }
      }
    }
    if (!ClusterRunAllowed(f.rel)) {
      CheckNoDirectClusterRun(f.rel, f.stripped_lines);
    }
    if (f.in_src) {
      CheckSrcTokens(f.rel, f.stripped_lines);
      CheckWhitespace(f.rel, f.raw, f.lines);
      CheckNoStdout(f.rel, f.stripped_lines);
      if (f.rel.rfind("src/net/", 0) != 0) {
        CheckNoBareRecv(f.rel, f.stripped_lines);
      }
      if (!ScalarDataPlaneAllowed(f.rel)) {
        CheckNoScalarDataPlane(f.rel, f.stripped_lines);
      }
      if (!CheckpointIoAllowed(f.rel)) {
        CheckNoCheckpointIo(f.rel, f.stripped_lines);
      }
      if (!SharedMergeAllowed(f.rel)) {
        CheckNoSharedMergeEscape(f.rel, f.stripped_lines);
      }
      if (f.rel != "src/common/simd.h") {
        CheckNoRawIntrinsics(f.rel, f.stripped_lines);
      }
      if (f.path.extension() == ".cc") {
        CheckCcPairing(root, f.rel, f.lines);
      }
      if (f.is_header && f.rel.rfind("src/obs/", 0) == 0) {
        CheckObsDoxygen(f.rel, f.lines);
      }
      CheckMutexAnnotations(f);
      if (!Allowlisted("D1", f.rel)) CheckWallTime(f);
      if (!Allowlisted("D2", f.rel)) CheckRandomness(f);
      if (!Allowlisted("D3", f.rel)) {
        CheckUnorderedIteration(f, unordered_idents);
      }
    }
  }
  CheckNodiscard(root);

  for (const Finding& f : g_findings) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  if (!g_findings.empty()) {
    std::fprintf(stderr, "adaptagg_lint: %zu finding(s) in %zu files\n",
                 g_findings.size(), files.size());
    return 1;
  }
  std::printf("adaptagg_lint: %zu files clean\n", files.size());
  return 0;
}
